#include "alternatives/strategies.h"

#include <algorithm>

#include "core/server_buffer.h"
#include "policies/tail_drop.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace rtsmooth::alternatives {
namespace {

/// Per-slot offered bytes, indexed by arrival step.
std::vector<Bytes> per_slot_bytes(const Stream& stream) {
  std::vector<Bytes> slots(static_cast<std::size_t>(stream.horizon()), 0);
  for (const SliceRun& run : stream.runs()) {
    slots[static_cast<std::size_t>(run.arrival)] += run.total_bytes();
  }
  return slots;
}

}  // namespace

StrategyOutcome evaluate_peak_provision(const Stream& stream) {
  StrategyOutcome out{.name = "peak-provision"};
  out.reserved_peak = static_cast<double>(stream.max_frame_bytes());
  out.reserved_average = out.reserved_peak;
  out.delivered_fraction = 1.0;
  out.benefit_fraction = 1.0;
  return out;
}

StrategyOutcome evaluate_truncation(const Stream& stream, Bytes rate) {
  RTS_EXPECTS(rate >= stream.max_slice_size());
  // A one-slot buffer: data either leaves in its own slot or is dropped.
  const Plan plan = Planner::from_delay_rate(1, rate);
  const SimReport report = sim::simulate(stream, plan, "tail-drop");
  StrategyOutcome out{.name = "truncate"};
  out.reserved_peak = static_cast<double>(rate);
  out.reserved_average = out.reserved_peak;
  out.delivered_fraction = 1.0 - report.byte_loss();
  out.benefit_fraction = report.benefit_fraction();
  out.added_delay = plan.delay;
  out.buffer_bytes = plan.buffer;
  return out;
}

StrategyOutcome evaluate_smoothing(const Stream& stream, Bytes rate,
                                   Time delay, std::string_view policy) {
  const Plan plan = Planner::from_delay_rate(delay, rate);
  RTS_EXPECTS(plan.buffer >= stream.max_slice_size());
  const SimReport report = sim::simulate(stream, plan, policy);
  StrategyOutcome out{.name = "smoothing/" + std::string(policy)};
  out.reserved_peak = static_cast<double>(rate);
  out.reserved_average = out.reserved_peak;
  out.delivered_fraction = 1.0 - report.byte_loss();
  out.benefit_fraction = report.benefit_fraction();
  out.added_delay = delay;
  out.buffer_bytes = plan.buffer;
  return out;
}

StrategyOutcome evaluate_renegotiated_cbr(const Stream& stream,
                                          const RenegotiationConfig& config) {
  RTS_EXPECTS(config.window >= 1);
  RTS_EXPECTS(config.headroom > 0.0);
  RTS_EXPECTS(config.buffer >= stream.max_slice_size());
  RTS_EXPECTS(config.floor_rate >= 1);
  const std::vector<Bytes> slots = per_slot_bytes(stream);

  // Server-side simulation with a piecewise-constant rate. Drops follow the
  // generic rule (Eq. (3)) with Tail-Drop victims.
  ServerBuffer buffer;
  TailDropPolicy policy;
  Bytes delivered = 0;
  Weight benefit = 0.0;
  std::vector<SentPiece> pieces;

  StrategyOutcome out{.name = "renegotiated-cbr"};
  Bytes rate = config.floor_rate;
  double committed = 0.0;
  Bytes window_bytes = 0;
  ArrivalCursor cursor(stream);
  const Time horizon = stream.horizon();
  const Time drain = horizon + stream.total_bytes() / config.floor_rate + 1;
  for (Time t = 0; t < drain; ++t) {
    if (t % config.window == 0 && t > 0) {
      const auto mean = static_cast<double>(window_bytes) /
                        static_cast<double>(config.window);
      const auto requested = std::max(
          config.floor_rate,
          static_cast<Bytes>(mean * config.headroom));
      if (requested != rate) {
        rate = requested;
        ++out.renegotiations;
      }
      window_bytes = 0;
    }
    const ArrivalBatch batch = cursor.step(t);
    for (std::size_t i = 0; i < batch.runs.size(); ++i) {
      const SliceRun& run = batch.runs[i];
      buffer.push(run, batch.first_index + i, run.count);
      window_bytes += run.total_bytes();
    }
    const Bytes planned = std::min(rate, buffer.occupancy());
    const Bytes target = config.buffer + planned;
    if (buffer.occupancy() > target) policy.shed(buffer, target);
    pieces.clear();
    buffer.send(planned, pieces);
    for (const SentPiece& piece : pieces) {
      delivered += piece.bytes;
      benefit += piece.run->byte_value() * static_cast<double>(piece.bytes);
    }
    committed += static_cast<double>(rate);
    out.reserved_peak = std::max(out.reserved_peak, static_cast<double>(rate));
    if (t >= horizon && buffer.empty()) {
      committed -= static_cast<double>(rate);  // nothing was reserved here
      out.reserved_average = committed / static_cast<double>(t);
      break;
    }
  }
  if (out.reserved_average == 0.0) {
    out.reserved_average = committed / static_cast<double>(drain);
  }
  out.delivered_fraction = static_cast<double>(delivered) /
                           static_cast<double>(stream.total_bytes());
  out.benefit_fraction = benefit / stream.total_weight();
  out.added_delay = config.window;  // client must ride out a window
  out.buffer_bytes = config.buffer;
  return out;
}

Stream merge_streams(std::span<const Stream> streams) {
  std::vector<SliceRun> runs;
  std::size_t total = 0;
  for (const Stream& s : streams) total += s.run_count();
  runs.reserve(total);
  for (const Stream& s : streams) {
    runs.insert(runs.end(), s.runs().begin(), s.runs().end());
  }
  return Stream::from_runs(std::move(runs));
}

Bytes min_rate_for_loss(const Stream& stream, Time delay, double loss_budget,
                        std::string_view policy) {
  RTS_EXPECTS(loss_budget >= 0.0 && loss_budget < 1.0);
  auto loss_at = [&](Bytes rate) {
    const Plan plan = Planner::from_delay_rate(delay, rate);
    if (plan.buffer < stream.max_slice_size()) return 1.0;
    return sim::simulate(stream, plan, policy).weighted_loss();
  };
  Bytes lo = 1;
  Bytes hi = std::max<Bytes>(stream.max_frame_bytes(), 1);
  while (loss_at(hi) > loss_budget) hi *= 2;  // degenerate tiny streams
  while (lo < hi) {
    const Bytes mid = lo + (hi - lo) / 2;
    if (loss_at(mid) <= loss_budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace rtsmooth::alternatives
