#include "core/event_engine.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::sim {
namespace {

/// std::push_heap builds a max-heap; invert the order so top() is the
/// earliest event (kind breaks ties, in enum order).
bool later(const Event& a, const Event& b) {
  if (a.at != b.at) return a.at > b.at;
  return static_cast<int>(a.kind) > static_cast<int>(b.kind);
}

}  // namespace

void EventQueue::push(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

const Event& EventQueue::top() const {
  RTS_EXPECTS(!heap_.empty());
  return heap_.front();
}

void EventQueue::pop() {
  RTS_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

}  // namespace rtsmooth::sim
