// Event-driven simulation core (DESIGN.md Sect. 17).
//
// The slot-stepped loop in sim/simulator.cpp pays O(T) per run even when
// every component is idle — dead weight exactly in the regimes the paper's
// guarantees target (day-long traces, sparse bursts). The event engine runs
// the *same* per-step pipeline, but only at steps where something can
// happen; a quiescent span in between is absorbed in O(1) plus whatever the
// attached observers require.
//
// A step t is skippable when the server (buffer + retransmission queue) is
// empty, the client buffer is empty, and no event is scheduled at t. The
// next event is the minimum over four sources, kept in a tiny priority
// queue:
//
//   Arrival    — the next slice run reaching the server
//   Drain      — the link's next possible delivery or NACK surfacing
//   Deadline   — the playout step of the next not-yet-played frame
//   Horizon    — one past the nominal playout range (keeps report.steps
//                identical to the slot loop's final t)
//
// Stateful fault decorators bound Drain conservatively: a pending NACK's
// feedback-due step, the next open throttle window, or simply now + 1 when
// the link cannot prove silence (Link::next_activity()). The Gilbert-
// Elliott loss chain needs no bounding event at all — it advances lazily,
// consuming the identical RNG draws in the identical order whether caught
// up step-by-step or in one batch (Link::advance_to(), called at span end,
// replicates the slot loop's per-step polling). This RNG-consumption
// contract is what makes the two engines byte-identical: reports, registry
// snapshots, traces and incident lists all match exactly, which the
// three-way differential harness (tests/differential.h) pins per commit.

#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace rtsmooth::sim {

/// Which main loop SmoothingSimulator::run() uses. Both produce
/// byte-identical results; EventDriven is faster on quiescent-heavy traces.
enum class EngineKind {
  SlotStepped,  ///< visit every step t = 0, 1, 2, ...
  EventDriven,  ///< skip quiescent spans between scheduled events
};

/// Category of a scheduled event. Ordering below is the tie-break order for
/// events at the same step, so queue pops are deterministic.
enum class EventKind {
  Arrival,     ///< a slice run reaches the server
  Drain,       ///< the link may deliver pieces or surface NACKs
  Deadline,    ///< a frame's playout step
  FaultState,  ///< a fault decorator's state changes (feedback due,
               ///< throttle window opening) — folded into Drain by
               ///< Link::next_activity(); kept distinct for unit tests
  Horizon,     ///< one past the nominal playout range
};

struct Event {
  Time at = 0;
  EventKind kind = EventKind::Horizon;
};

/// Binary min-heap of Events ordered by (at, kind). clear() keeps the
/// storage, so a queue reused across spans allocates only once.
class EventQueue {
 public:
  void push(Event e);
  const Event& top() const;
  void pop();
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

 private:
  std::vector<Event> heap_;
};

/// The engine loop, decoupled from the simulator so tests can drive it with
/// synthetic hooks. Advances time from `start` until ops.more(t) fails and
/// returns the final t (== the slot loop's exit value). Per iteration:
///
///   more(t)                 -> bool: keep running?
///   quiescent(t)            -> bool: may steps be skipped right now?
///   collect_events(t, q)    -> push every upcoming event (omit kNever)
///   absorb_span(t0, t1)     -> account for skipped steps [t0, t1)
///   live_step(t)            -> run the full pipeline at step t
///
/// An event at or before t means "t itself is live" — the step runs in
/// full; only a strictly-future earliest event opens a span. A quiescent
/// state with an empty queue also falls back to a live step, so a
/// conservative collect_events can never wedge or desynchronize the loop.
template <typename Ops>
Time run_event_driven(Time start, Ops&& ops) {
  EventQueue queue;
  Time t = start;
  while (ops.more(t)) {
    Time span_end = t;
    if (ops.quiescent(t)) {
      queue.clear();
      ops.collect_events(t, queue);
      if (!queue.empty() && queue.top().at > t) span_end = queue.top().at;
    }
    if (span_end <= t) {
      ops.live_step(t);
      ++t;
    } else {
      ops.absorb_span(t, span_end);
      t = span_end;
    }
  }
  return t;
}

}  // namespace rtsmooth::sim
