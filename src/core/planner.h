// Resource planning: the paper's headline identity B = D * R (Eq. (1),
// Theorem 3.5) packaged the way Sect. 3.3 suggests using it — a connection
// setup protocol where two of {buffer space, smoothing delay, link rate} are
// given and the third is derived.
//
// Given any two parameters, the derived third is the unique value that
// neither loses data unnecessarily (B < RD wastes delay or space, observed
// losses rise) nor wastes resources (B > RD buys nothing). The refined
// variable-size form (Theorem 3.9) is exposed as a throughput guarantee.

#pragma once

#include "core/types.h"

namespace rtsmooth {

/// A complete smoothing configuration satisfying B = D * R.
struct Plan {
  Bytes buffer = 0;  ///< B, bytes at the server and at the client each
  Time delay = 0;    ///< D, smoothing delay in steps (playout at AT + P + D)
  Bytes rate = 0;    ///< R, link bytes per step

  bool operator==(const Plan&) const = default;
};

class Planner {
 public:
  /// B := D * R.
  static Plan from_delay_rate(Time delay, Bytes rate);

  /// D := B / R. If R does not divide B, the returned plan *shrinks the
  /// buffer* to the largest B' <= B with R | B' — by Sect. 3.3 observation 2,
  /// lowering B to D*R never increases loss, whereas rounding D up would
  /// waste client memory.
  static Plan from_buffer_rate(Bytes buffer, Bytes rate);

  /// R := floor(B / D), with B shrunk to D*R when D does not divide B
  /// (rounding the rate up would exceed what the buffer can sustain and
  /// waste bandwidth — Sect. 3.3 observation 2). Requires B >= D.
  static Plan from_buffer_delay(Bytes buffer, Time delay);

  /// Theorem 3.9: guaranteed fraction of the optimal throughput when slice
  /// sizes range in [1, max_slice_size]: (B - Lmax + 1) / B.
  static double throughput_guarantee(Bytes buffer, Bytes max_slice_size);

  /// Lemma 3.6: throughput with buffer b1 is at least b1/b2 of the
  /// throughput with buffer b2 >= b1 (unit slices, same stream and rate).
  static double buffer_ratio_guarantee(Bytes b1, Bytes b2);
};

}  // namespace rtsmooth
