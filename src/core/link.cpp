#include "core/link.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth {

FixedDelayLink::FixedDelayLink(Time propagation_delay) : p_(propagation_delay) {
  RTS_EXPECTS(propagation_delay >= 0);
}

void FixedDelayLink::submit(Time t, std::vector<SentPiece> pieces) {
  if (pieces.empty()) return;
  RTS_EXPECTS(in_flight_.empty() || in_flight_.back().deliver_at <= t + p_);
  in_flight_.push_back(Batch{.deliver_at = t + p_, .pieces = std::move(pieces)});
}

std::vector<SentPiece> FixedDelayLink::deliver(Time t) {
  std::vector<SentPiece> out;
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
    RTS_ASSERT(in_flight_.front().deliver_at == t);  // polled every step
    auto& pieces = in_flight_.front().pieces;
    out.insert(out.end(), pieces.begin(), pieces.end());
    in_flight_.pop_front();
  }
  return out;
}

BoundedJitterLink::BoundedJitterLink(Time propagation_delay, Time max_jitter,
                                     Rng rng)
    : p_(propagation_delay), j_(max_jitter), rng_(rng) {
  RTS_EXPECTS(propagation_delay >= 0);
  RTS_EXPECTS(max_jitter >= 0);
}

void BoundedJitterLink::submit(Time t, std::vector<SentPiece> pieces) {
  if (pieces.empty()) return;
  const Time jitter = j_ == 0 ? 0 : rng_.uniform_int(0, j_);
  // Clamp so deliveries stay FIFO: a later submission never arrives before
  // an earlier one.
  const Time at = std::max(t + p_ + jitter, last_delivery_);
  last_delivery_ = at;
  in_flight_.push_back(Batch{.deliver_at = at, .pieces = std::move(pieces)});
}

std::vector<SentPiece> BoundedJitterLink::deliver(Time t) {
  std::vector<SentPiece> out;
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
    auto& pieces = in_flight_.front().pieces;
    out.insert(out.end(), pieces.begin(), pieces.end());
    in_flight_.pop_front();
  }
  return out;
}

}  // namespace rtsmooth
