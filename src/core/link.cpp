#include "core/link.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth {

FixedDelayLink::FixedDelayLink(Time propagation_delay) : p_(propagation_delay) {
  RTS_EXPECTS(propagation_delay >= 0);
  // One submission per step, delivered exactly P steps later; +2 covers the
  // same-step submit-before-deliver overlap. Sized once, never grows.
  in_flight_.reserve(static_cast<std::size_t>(p_) + 2);
}

void FixedDelayLink::submit(Time t, std::vector<SentPiece> pieces) {
  if (pieces.empty()) return;
  RTS_EXPECTS(in_flight_.empty() || in_flight_.back().deliver_at <= t + p_);
  in_flight_.push_back(Batch{.deliver_at = t + p_, .pieces = std::move(pieces)});
}

std::vector<SentPiece> FixedDelayLink::deliver(Time t) {
  std::vector<SentPiece> out;
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
    RTS_ASSERT(in_flight_.front().deliver_at == t);  // polled every step
    Batch batch = in_flight_.pop_front();
    if (out.empty()) {
      // The common (and for a constant delay, only) case: hand the stored
      // vector straight back so the caller can recycle its storage.
      out = std::move(batch.pieces);
    } else {
      out.insert(out.end(), batch.pieces.begin(), batch.pieces.end());
    }
  }
  return out;
}

BoundedJitterLink::BoundedJitterLink(Time propagation_delay, Time max_jitter,
                                     Rng rng)
    : p_(propagation_delay), j_(max_jitter), rng_(rng) {
  RTS_EXPECTS(propagation_delay >= 0);
  RTS_EXPECTS(max_jitter >= 0);
  in_flight_.reserve(static_cast<std::size_t>(p_ + j_) + 2);
}

void BoundedJitterLink::submit(Time t, std::vector<SentPiece> pieces) {
  if (pieces.empty()) return;
  const Time jitter = j_ == 0 ? 0 : rng_.uniform_int(0, j_);
  // Clamp so deliveries stay FIFO: a later submission never arrives before
  // an earlier one.
  const Time at = std::max(t + p_ + jitter, last_delivery_);
  last_delivery_ = at;
  in_flight_.push_back(Batch{.deliver_at = at, .pieces = std::move(pieces)});
}

std::vector<SentPiece> BoundedJitterLink::deliver(Time t) {
  std::vector<SentPiece> out;
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
    Batch batch = in_flight_.pop_front();
    if (out.empty()) {
      out = std::move(batch.pieces);
    } else {
      // Clamped submissions can share a delivery step; concatenate in FIFO
      // order, exactly as the deque implementation did.
      out.insert(out.end(), batch.pieces.begin(), batch.pieces.end());
    }
  }
  return out;
}

}  // namespace rtsmooth
