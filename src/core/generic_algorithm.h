// The generic server algorithm (paper Sect. 3.1.1, Eqs. (2) and (3)).
//
// Per step t:   |S(t)| = min(R, |Bs(t-1)| + |A(t)|)                    (2)
//               |D(t)| = max(0, |Bs(t-1)| + |A(t)| - |S(t)| - B)       (3)
//
// i.e. the server is work-conserving — it transmits at the full link rate
// whenever it has data — and on overflow drops just enough whole slices to
// bring post-send occupancy back to B. *Which* slices are dropped is
// delegated to a DropPolicy (the paper's intentional under-specification);
// with unit slices the count dropped is exactly Eq. (3) regardless of
// policy, which is what makes Theorem 3.5 policy-independent.

// Recovery extension (not in the paper; see DESIGN.md "Fault model &
// recovery semantics"): on a lossy link, erased pieces come back as NACKs.
// A NACKed piece is retransmitted — with exponential backoff in slots and a
// bounded retry budget — only while the copy can still arrive by its playout
// deadline AT + P + D, i.e. while the retransmission step is <= AT + D.
// Anything else is written off and surfaced to the accounting sink, so the
// report's conservation invariant keeps holding byte-for-byte under faults.
// Retransmissions take priority over fresh data inside the same link rate R,
// so recovery degrades throughput instead of violating Eq. (2).

#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/drop_policy.h"
#include "core/link.h"
#include "core/metrics.h"
#include "core/schedule.h"
#include "core/server_buffer.h"
#include "core/slice.h"
#include "core/types.h"
#include "obs/telemetry.h"
#include "util/ring_buffer.h"

namespace rtsmooth {

/// Retransmission behaviour for NACKed pieces. Disabled by default: every
/// reported loss is written off immediately (pure-loss accounting).
struct RecoveryConfig {
  bool enabled = false;
  std::int32_t max_retries = 3;  ///< retransmissions per piece beyond the original
  Time backoff_base = 1;  ///< the k-th retransmission waits base << (k-1) slots
  /// D, for the deadline test (a retransmission sent at step ts arrives at
  /// ts + P and must make AT + P + D, so ts <= AT + D). The simulator fills
  /// this from SimConfig; standalone servers set it explicitly.
  Time smoothing_delay = 0;
};

struct ServerConfig {
  Bytes buffer = 1;  ///< B: bound on |Bs(t)| after each step
  Bytes rate = 1;    ///< R: link rate in bytes per step
  RecoveryConfig recovery{};
};

/// The smoothing server: buffer + link-rate constraint + drop policy.
///
/// Precondition for well-formed operation: B >= Lmax (a slice larger than
/// the buffer could never be stored). The constructor cannot check this
/// (streams arrive later); SmoothingSimulator checks it per stream.
class SmoothingServer {
 public:
  SmoothingServer(ServerConfig config, std::unique_ptr<DropPolicy> policy);

  /// Executes one step: NACK triage, (early drops,) arrivals, retransmit
  /// due pieces, Eq. (3) drops, Eq. (2) send with the remaining rate. Drop
  /// and arrival tallies are accumulated into `report`; per-run outcomes
  /// into `rec` if given. The pieces submitted to the link are appended to
  /// `out` — the allocation-free entry point: callers that recycle `out`'s
  /// storage across steps (the simulator does) pay no heap traffic here.
  void step_into(Time t, const ArrivalBatch& arrivals,
                 std::span<const Nack> nacks, SimReport& report,
                 ScheduleRecorder* rec, std::vector<SentPiece>& out);

  /// Convenience wrapper returning a fresh vector per call.
  std::vector<SentPiece> step(Time t, const ArrivalBatch& arrivals,
                              std::span<const Nack> nacks, SimReport& report,
                              ScheduleRecorder* rec) {
    std::vector<SentPiece> out;
    step_into(t, arrivals, nacks, report, rec, out);
    return out;
  }

  /// Lossless-link convenience: step with no NACKs.
  std::vector<SentPiece> step(Time t, const ArrivalBatch& arrivals,
                              SimReport& report, ScheduleRecorder* rec) {
    return step(t, arrivals, {}, report, rec);
  }

  /// Phase-split step interface, for live callers (src/daemon/) whose
  /// arrivals are not a contiguous ArrivalBatch span: a serving loop admits
  /// runs out of a recycling slot arena, so run identities are arbitrary
  /// per-step indices, not `first_index + i`. Per step, call begin_step()
  /// once, admit() zero or more times, then finish_step() once —
  /// step_into() is exactly that composition, so the phases share every
  /// invariant (event order, accounting, allocation-freedom) with the batch
  /// entry point.
  void begin_step(Time t, std::span<const Nack> nacks, SimReport& report,
                  ScheduleRecorder* rec);
  /// Pushes `run.count` slices of `run` into the buffer under identity
  /// `run_index` and tallies them as offered. Only valid between
  /// begin_step() and finish_step().
  void admit(const SliceRun& run, std::size_t run_index);
  /// Retransmits due pieces, sheds per Eq. (3), and sends per Eq. (2);
  /// submitted pieces are appended to `out`.
  void finish_step(std::vector<SentPiece>& out);

  /// Degradation hook (the daemon's overload ladder, DESIGN.md Sect. 13):
  /// drops every droppable slice whose byte value is <= `floor`, using the
  /// same greedy-shed template the value-aware policies use, and accounts
  /// the drops into `report`. Callable between begin_step() and
  /// finish_step() (then `report` must be the step's bound report) or
  /// between whole steps. Returns what was dropped.
  DropResult shed_below_value(double floor, SimReport& report);

  const ServerBuffer& buffer() const { return buffer_; }
  const ServerConfig& config() const { return config_; }
  const DropPolicy& policy() const { return *policy_; }

  /// True when both the buffer and the retransmission queue are empty.
  bool idle() const { return buffer_.empty() && retx_queue_.empty(); }

  /// Registry back-fill for `n` quiescent steps the event engine skipped:
  /// the zero-valued per-step samples finish_step() records for an idle
  /// server (the byte counters add 0 on such steps, which is a no-op).
  /// No-op while telemetry is off.
  void record_idle_steps(std::int64_t n) {
    if (occupancy_hist_ == nullptr) return;
    occupancy_hist_->record(0, n);
    max_occupancy_->update(0);
  }

  /// Invoked with every piece written off as link loss (NACKed but not
  /// recoverable: retries exhausted, or the deadline cannot be met). The
  /// simulator wires this to Client::add_link_loss so lost bytes stay in the
  /// conservation ledger.
  using LinkLossSink = std::function<void(const SliceRun& run,
                                          std::size_t run_index, Bytes bytes)>;
  void set_link_loss_sink(LinkLossSink sink) { loss_sink_ = std::move(sink); }

  /// Invoked with every server-side drop (Eq. (3) sheds, early drops, value-
  /// floor sheds) after it has been tallied. Live callers use this for
  /// per-run ledgers the batch SimReport cannot carry; null by default.
  using DropSink = std::function<void(const SliceRun& run,
                                      std::size_t run_index,
                                      std::int64_t slices)>;
  void set_drop_sink(DropSink sink) { drop_sink_ = std::move(sink); }

  /// Installs the telemetry handle (null by default: no cost). The server
  /// records per-step occupancy, send/retransmit/write-off counters, and a
  /// "policy.drop" Span around each Eq. (3) shed. Instruments are resolved
  /// once here, so the per-step cost with telemetry on is plain pointer
  /// arithmetic, not map lookups.
  void set_telemetry(obs::Telemetry telemetry);

  /// Moves whatever is still buffered or queued for retransmission into
  /// `report.residual` (for truncated simulations). The simulator's normal
  /// path drains instead.
  void account_residual(SimReport& report) const;

 private:
  struct RetxEntry {
    SentPiece piece;
    Time ready_at = 0;  ///< earliest retransmission step (backoff applied)
  };

  void account_drop(const SliceRun& run, std::size_t run_index,
                    std::int64_t slices, Time t);
  void write_off(const SentPiece& piece);
  void handle_nack(const Nack& nack, Time t);
  /// Sends due retransmissions (FIFO, whole pieces) within `budget` bytes;
  /// returns the bytes consumed.
  Bytes send_retransmissions(Time t, Bytes budget,
                             std::vector<SentPiece>& out);

  ServerConfig config_;
  std::unique_ptr<DropPolicy> policy_;
  ServerBuffer buffer_;
  /// Ring sized from the retry budget at construction (DESIGN.md Sect. 12);
  /// grows only if a run exceeds the estimate, never in steady state.
  RingBuffer<RetxEntry> retx_queue_;
  LinkLossSink loss_sink_;
  DropSink drop_sink_;
  obs::Telemetry telemetry_;
  // Instruments resolved by set_telemetry(); null while telemetry is off.
  obs::Counter* sent_bytes_ = nullptr;
  obs::Counter* retx_bytes_ = nullptr;
  obs::Counter* nacks_seen_ = nullptr;
  obs::Counter* shed_events_ = nullptr;
  obs::Counter* written_off_bytes_ = nullptr;
  obs::Histogram* occupancy_hist_ = nullptr;
  obs::Gauge* max_occupancy_ = nullptr;
  SimReport* current_report_ = nullptr;
  ScheduleRecorder* current_rec_ = nullptr;
  Time now_ = 0;
  std::int64_t step_nacks_ = 0;  ///< NACKs seen this step, for telemetry
};

}  // namespace rtsmooth
