// The generic server algorithm (paper Sect. 3.1.1, Eqs. (2) and (3)).
//
// Per step t:   |S(t)| = min(R, |Bs(t-1)| + |A(t)|)                    (2)
//               |D(t)| = max(0, |Bs(t-1)| + |A(t)| - |S(t)| - B)       (3)
//
// i.e. the server is work-conserving — it transmits at the full link rate
// whenever it has data — and on overflow drops just enough whole slices to
// bring post-send occupancy back to B. *Which* slices are dropped is
// delegated to a DropPolicy (the paper's intentional under-specification);
// with unit slices the count dropped is exactly Eq. (3) regardless of
// policy, which is what makes Theorem 3.5 policy-independent.

#pragma once

#include <memory>

#include "core/drop_policy.h"
#include "core/metrics.h"
#include "core/schedule.h"
#include "core/server_buffer.h"
#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth {

struct ServerConfig {
  Bytes buffer = 1;  ///< B: bound on |Bs(t)| after each step
  Bytes rate = 1;    ///< R: link rate in bytes per step
};

/// The smoothing server: buffer + link-rate constraint + drop policy.
///
/// Precondition for well-formed operation: B >= Lmax (a slice larger than
/// the buffer could never be stored). The constructor cannot check this
/// (streams arrive later); SmoothingSimulator checks it per stream.
class SmoothingServer {
 public:
  SmoothingServer(ServerConfig config, std::unique_ptr<DropPolicy> policy);

  /// Executes one step: (early drops,) arrivals, Eq. (3) drops, Eq. (2)
  /// send. Drop and arrival tallies are accumulated into `report`; per-run
  /// outcomes into `rec` if given. Returns the pieces submitted to the link.
  std::vector<SentPiece> step(Time t, const ArrivalBatch& arrivals,
                              SimReport& report, ScheduleRecorder* rec);

  const ServerBuffer& buffer() const { return buffer_; }
  const ServerConfig& config() const { return config_; }
  const DropPolicy& policy() const { return *policy_; }

  /// Moves whatever is still buffered into `report.residual` (for truncated
  /// simulations). The simulator's normal path drains instead.
  void account_residual(SimReport& report) const;

 private:
  void account_drop(const SliceRun& run, std::size_t run_index,
                    std::int64_t slices, Time t);

  ServerConfig config_;
  std::unique_ptr<DropPolicy> policy_;
  ServerBuffer buffer_;
  SimReport* current_report_ = nullptr;
  ScheduleRecorder* current_rec_ = nullptr;
  Time now_ = 0;
};

}  // namespace rtsmooth
