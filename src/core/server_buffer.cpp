#include "core/server_buffer.h"

#include <algorithm>

namespace rtsmooth {

const Chunk& ServerBuffer::chunk(std::size_t i) const {
  RTS_EXPECTS(i < chunks_.size());
  return chunks_[i];
}

std::int64_t ServerBuffer::droppable_slices(std::size_t i) const {
  const Chunk& c = chunk(i);
  if (i == 0 && c.head_sent > 0) return c.slices - 1;
  return c.slices;
}

void ServerBuffer::push(const SliceRun& run, std::size_t run_index,
                        std::int64_t count) {
  RTS_EXPECTS(count >= 1);
  occupancy_ += run.slice_size * count;
  if (!chunks_.empty() && chunks_.back().run == &run) {
    chunks_.back().slices += count;
    return;
  }
  chunks_.push_back(Chunk{.run = &run, .run_index = run_index,
                          .slices = count, .head_sent = 0});
}

DropResult ServerBuffer::drop_slices(std::size_t i, std::int64_t k) {
  RTS_EXPECTS(i < chunks_.size());
  RTS_EXPECTS(k >= 1 && k <= droppable_slices(i));
  Chunk& c = chunks_[i];
  c.slices -= k;
  const DropResult freed{.bytes = c.run->slice_size * k,
                         .weight = c.run->weight * static_cast<Weight>(k),
                         .slices = k};
  occupancy_ -= freed.bytes;
  RTS_ASSERT(occupancy_ >= 0);
  if (on_drop_) on_drop_(*c.run, c.run_index, k);
  if (c.slices == 0) {
    RTS_ASSERT(c.head_sent == 0);  // droppable_slices() protects the head
    chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return freed;
}

Bytes ServerBuffer::send(Bytes budget, std::vector<SentPiece>& out) {
  RTS_EXPECTS(budget >= 0);
  Bytes remaining = std::min(budget, occupancy_);
  const Bytes sent = remaining;
  while (remaining > 0) {
    RTS_ASSERT(!chunks_.empty());
    Chunk& head = chunks_.front();
    const Bytes take = std::min(remaining, head.bytes());
    const Bytes progress = head.head_sent + take;
    const std::int64_t completed = progress / head.run->slice_size;
    SentPiece piece{.run = head.run,
                    .run_index = head.run_index,
                    .bytes = take,
                    .completed_slices = completed};
    head.slices -= completed;
    head.head_sent = progress % head.run->slice_size;
    occupancy_ -= take;
    remaining -= take;
    out.push_back(piece);
    if (head.slices == 0) {
      RTS_ASSERT(head.head_sent == 0);
      chunks_.pop_front();
    }
  }
  RTS_ENSURES(occupancy_ >= 0);
  return sent;
}

}  // namespace rtsmooth
