#include "core/planner.h"

#include "util/assert.h"

namespace rtsmooth {

Plan Planner::from_delay_rate(Time delay, Bytes rate) {
  RTS_EXPECTS(delay >= 1);
  RTS_EXPECTS(rate >= 1);
  return Plan{.buffer = delay * rate, .delay = delay, .rate = rate};
}

Plan Planner::from_buffer_rate(Bytes buffer, Bytes rate) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(rate >= 1);
  RTS_EXPECTS(buffer >= rate);  // need D >= 1
  const Time delay = buffer / rate;
  return Plan{.buffer = delay * rate, .delay = delay, .rate = rate};
}

Plan Planner::from_buffer_delay(Bytes buffer, Time delay) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(delay >= 1);
  RTS_EXPECTS(buffer >= delay);  // need R >= 1
  const Bytes rate = buffer / delay;
  return Plan{.buffer = delay * rate, .delay = delay, .rate = rate};
}

double Planner::throughput_guarantee(Bytes buffer, Bytes max_slice_size) {
  RTS_EXPECTS(buffer >= max_slice_size);
  RTS_EXPECTS(max_slice_size >= 1);
  return static_cast<double>(buffer - max_slice_size + 1) /
         static_cast<double>(buffer);
}

double Planner::buffer_ratio_guarantee(Bytes b1, Bytes b2) {
  RTS_EXPECTS(b1 >= 1);
  RTS_EXPECTS(b2 >= b1);
  return static_cast<double>(b1) / static_cast<double>(b2);
}

}  // namespace rtsmooth
