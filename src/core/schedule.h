// Schedule accounting: the paper's per-step sets A(t), S(t), R(t), P(t),
// D(t) and per-slice event times (Definitions 2.2-2.3), recorded at slice-run
// granularity.
//
// Tests use the recorder to check the timing lemmas directly: Lemma 3.2
// (every transmitted byte leaves the server within B/R of arrival),
// Lemma 3.3 (t+P <= RT <= t+P+B/R) and the real-time property PT = AT+P+D.

#pragma once

#include <vector>

#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth {

/// Sizes of the paper's per-step sets, in bytes.
struct StepSets {
  Time t = 0;
  Bytes arrived = 0;         ///< |A(t)|
  Bytes sent = 0;            ///< |S(t)|
  Bytes delivered = 0;       ///< |R(t)|
  Bytes played = 0;          ///< |P(t)|
  Bytes dropped_server = 0;  ///< |D(t)| at the server
  Bytes dropped_client = 0;  ///< client-side drops (overflow + late)
  Bytes server_occupancy = 0;  ///< |Bs(t)| after the step
  Bytes client_occupancy = 0;  ///< |Bc(t)| after the step

  bool operator==(const StepSets&) const = default;
};

/// Outcome of one slice run: how its `count` slices were dispositioned and
/// the first/last times of each event kind.
struct RunOutcome {
  std::int64_t played = 0;
  std::int64_t dropped_server = 0;
  std::int64_t dropped_client = 0;
  Time first_send = kNever;   ///< min ST over the run's transmitted bytes
  Time last_send = kNever;    ///< max ST (kNever while nothing sent)
  Time first_receive = kNever;
  Time last_receive = kNever;
  Time play_time = kNever;    ///< PT; all slices of a run play together

  bool operator==(const RunOutcome&) const = default;
};

/// Optional recorder attached to a simulation. Recording per-step sets is
/// cheap (one struct per step) but still off by default for parameter
/// sweeps; per-run outcomes are always kept.
class ScheduleRecorder {
 public:
  enum class Level { RunsOnly, RunsAndSteps };

  explicit ScheduleRecorder(std::size_t run_count,
                            Level level = Level::RunsOnly)
      : level_(level), runs_(run_count) {}

  Level level() const { return level_; }

  void begin_step(Time t);
  StepSets& step();  ///< the StepSets under construction (RunsAndSteps only)

  RunOutcome& run(std::size_t run_index);
  const RunOutcome& run(std::size_t run_index) const;
  std::size_t run_count() const { return runs_.size(); }

  const std::vector<StepSets>& steps() const { return steps_; }

  /// Records a send of `bytes` of run `run_index` at time t.
  void note_send(std::size_t run_index, Time t, Bytes bytes);
  void note_receive(std::size_t run_index, Time t, Bytes bytes);

 private:
  Level level_;
  std::vector<RunOutcome> runs_;
  std::vector<StepSets> steps_;
  StepSets scratch_;  ///< used when steps are not being kept
};

}  // namespace rtsmooth
