#include "core/generic_algorithm.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth {
namespace {

std::size_t type_index(FrameType t) { return static_cast<std::size_t>(t); }

}  // namespace

SmoothingServer::SmoothingServer(ServerConfig config,
                                 std::unique_ptr<DropPolicy> policy)
    : config_(config), policy_(std::move(policy)) {
  RTS_EXPECTS(config_.buffer >= 1);
  RTS_EXPECTS(config_.rate >= 1);
  RTS_EXPECTS(policy_ != nullptr);
  buffer_.set_drop_observer([this](const SliceRun& run, std::size_t run_index,
                                   std::int64_t slices) {
    account_drop(run, run_index, slices, now_);
  });
}

void SmoothingServer::account_drop(const SliceRun& run, std::size_t run_index,
                                   std::int64_t slices, Time /*t*/) {
  RTS_ASSERT(current_report_ != nullptr);
  const Bytes bytes = run.slice_size * slices;
  const Weight weight = run.weight * static_cast<Weight>(slices);
  current_report_->dropped_server.add(bytes, weight, slices);
  if (current_rec_ != nullptr) {
    current_rec_->run(run_index).dropped_server += slices;
    current_rec_->step().dropped_server += bytes;
  }
}

std::vector<SentPiece> SmoothingServer::step(Time t,
                                             const ArrivalBatch& arrivals,
                                             SimReport& report,
                                             ScheduleRecorder* rec) {
  now_ = t;
  current_report_ = &report;
  current_rec_ = rec;

  // Pro-active (early) drops act on the state before this step's arrivals.
  policy_->early_drop(buffer_, config_.buffer, t);

  // A(t) arrives.
  for (std::size_t i = 0; i < arrivals.runs.size(); ++i) {
    const SliceRun& run = arrivals.runs[i];
    buffer_.push(run, arrivals.first_index + i, run.count);
    report.offered.add(run.total_bytes(), run.total_weight(), run.count);
    report.offered_by_type[type_index(run.frame_type)].add(
        run.total_bytes(), run.total_weight(), run.count);
    if (rec != nullptr) rec->step().arrived += run.total_bytes();
  }

  // Eq. (2): the send size is fixed from the pre-drop occupancy.
  const Bytes planned_send = std::min(config_.rate, buffer_.occupancy());

  // Eq. (3): shed whole slices until post-send occupancy is at most B.
  const Bytes target = config_.buffer + planned_send;
  if (buffer_.occupancy() > target) {
    policy_->shed(buffer_, target);
    RTS_ASSERT(buffer_.occupancy() <= target);
  }

  // Transmit in FIFO order at the maximal possible rate.
  std::vector<SentPiece> pieces;
  const Bytes sent = buffer_.send(planned_send, pieces);
  RTS_ASSERT(sent == planned_send);
  report.max_link_bytes_per_step =
      std::max(report.max_link_bytes_per_step, sent);
  report.max_server_occupancy =
      std::max(report.max_server_occupancy, buffer_.occupancy());
  if (rec != nullptr) {
    for (const SentPiece& piece : pieces) {
      rec->note_send(piece.run_index, t, piece.bytes);
    }
    rec->step().server_occupancy = buffer_.occupancy();
  }
  RTS_ENSURES(buffer_.occupancy() <= config_.buffer);

  current_report_ = nullptr;
  current_rec_ = nullptr;
  return pieces;
}

void SmoothingServer::account_residual(SimReport& report) const {
  for (std::size_t i = 0; i < buffer_.chunk_count(); ++i) {
    const Chunk& c = buffer_.chunk(i);
    report.residual.add(c.bytes(),
                        c.run->weight * static_cast<Weight>(c.slices),
                        c.slices);
  }
}

}  // namespace rtsmooth
