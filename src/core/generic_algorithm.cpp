#include "core/generic_algorithm.h"

#include <algorithm>

// Header-only shed templates; no link-time dependency on rtsmooth_policies.
#include "policies/shed_algorithms.h"
#include "util/assert.h"

namespace rtsmooth {
namespace {

std::size_t type_index(FrameType t) { return static_cast<std::size_t>(t); }

}  // namespace

SmoothingServer::SmoothingServer(ServerConfig config,
                                 std::unique_ptr<DropPolicy> policy)
    : config_(config), policy_(std::move(policy)) {
  RTS_EXPECTS(config_.buffer >= 1);
  RTS_EXPECTS(config_.rate >= 1);
  RTS_EXPECTS(policy_ != nullptr);
  buffer_.set_drop_observer([this](const SliceRun& run, std::size_t run_index,
                                   std::int64_t slices) {
    account_drop(run, run_index, slices, now_);
  });
  // Capacity formulas (DESIGN.md Sect. 12). Chunks hold >= 1 byte each and
  // same-run pushes merge, so B + one frame's worth of pre-shed overshoot
  // bounds the resident chunk count only loosely — in practice the count
  // tracks resident *runs*; 64 covers every committed workload and the ring
  // doubles transparently if a stream proves wilder. The retransmission
  // queue holds at most the pieces NACKed within one feedback round-trip,
  // each retried at most max_retries times.
  buffer_.reserve_chunks(64);
  if (config_.recovery.enabled) {
    retx_queue_.reserve(
        static_cast<std::size_t>(config_.recovery.max_retries + 1) * 16);
  }
}

void SmoothingServer::account_drop(const SliceRun& run, std::size_t run_index,
                                   std::int64_t slices, Time /*t*/) {
  RTS_ASSERT(current_report_ != nullptr);
  const Bytes bytes = run.slice_size * slices;
  const Weight weight = run.weight * static_cast<Weight>(slices);
  current_report_->dropped_server.add(bytes, weight, slices);
  if (current_rec_ != nullptr) {
    current_rec_->run(run_index).dropped_server += slices;
    current_rec_->step().dropped_server += bytes;
  }
  if (drop_sink_) drop_sink_(run, run_index, slices);
}

void SmoothingServer::set_telemetry(obs::Telemetry telemetry) {
  telemetry_ = telemetry;
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  // Eager creation keeps snapshots structurally identical across runs:
  // a lossless run reports server.retx_bytes = 0 rather than omitting it.
  sent_bytes_ = &reg.counter("server.sent_bytes");
  retx_bytes_ = &reg.counter("server.retx_bytes");
  nacks_seen_ = &reg.counter("server.nacks");
  shed_events_ = &reg.counter("server.shed_events");
  written_off_bytes_ = &reg.counter("server.written_off_bytes");
  occupancy_hist_ = &reg.histogram("server.occupancy",
                                   obs::HistogramSpec::exponential(1, 32));
  max_occupancy_ = &reg.gauge("server.max_occupancy");
}

void SmoothingServer::write_off(const SentPiece& piece) {
  if (written_off_bytes_ != nullptr) written_off_bytes_->add(piece.bytes);
  if (loss_sink_) loss_sink_(*piece.run, piece.run_index, piece.bytes);
}

void SmoothingServer::handle_nack(const Nack& nack, Time t) {
  const RecoveryConfig& cfg = config_.recovery;
  const std::int32_t next_attempt = nack.piece.retx_attempt + 1;
  // Last step a retransmission may leave and still make AT + P + D.
  const Time deadline = nack.piece.run->arrival + cfg.smoothing_delay;
  if (!cfg.enabled || next_attempt > cfg.max_retries) {
    write_off(nack.piece);
    return;
  }
  const Time ready = t + (cfg.backoff_base << (next_attempt - 1));
  if (ready > deadline) {
    write_off(nack.piece);
    return;
  }
  SentPiece copy = nack.piece;
  copy.retx_attempt = next_attempt;
  retx_queue_.push_back(RetxEntry{.piece = copy, .ready_at = ready});
}

Bytes SmoothingServer::send_retransmissions(Time t, Bytes budget,
                                            std::vector<SentPiece>& out) {
  Bytes sent = 0;
  std::size_t i = 0;
  while (i < retx_queue_.size()) {
    const RetxEntry& entry = retx_queue_[i];
    // A queued piece whose deadline has passed can no longer help: write it
    // off regardless of budget so the queue (and the simulation) drains.
    if (t > entry.piece.run->arrival + config_.recovery.smoothing_delay) {
      write_off(entry.piece);
      retx_queue_.erase(i);
      continue;
    }
    if (entry.ready_at > t) {
      ++i;
      continue;
    }
    // Pieces are the atomic loss/retransmit unit; send head-of-line whole or
    // not at all (no reordering past it).
    if (entry.piece.bytes > budget - sent) break;
    sent += entry.piece.bytes;
    out.push_back(entry.piece);
    if (current_report_ != nullptr) {
      current_report_->retransmitted_bytes += entry.piece.bytes;
    }
    retx_queue_.erase(i);
  }
  return sent;
}

void SmoothingServer::begin_step(Time t, std::span<const Nack> nacks,
                                 SimReport& report, ScheduleRecorder* rec) {
  RTS_EXPECTS(current_report_ == nullptr);
  now_ = t;
  current_report_ = &report;
  current_rec_ = rec;
  step_nacks_ = static_cast<std::int64_t>(nacks.size());

  // Loss feedback arriving this step: retry or write off.
  for (const Nack& nack : nacks) handle_nack(nack, t);

  // Pro-active (early) drops act on the state before this step's arrivals.
  policy_->early_drop(buffer_, config_.buffer, t);
}

void SmoothingServer::admit(const SliceRun& run, std::size_t run_index) {
  RTS_EXPECTS(current_report_ != nullptr);
  buffer_.push(run, run_index, run.count);
  current_report_->offered.add(run.total_bytes(), run.total_weight(),
                               run.count);
  current_report_->offered_by_type[type_index(run.frame_type)].add(
      run.total_bytes(), run.total_weight(), run.count);
  if (current_rec_ != nullptr) {
    current_rec_->step().arrived += run.total_bytes();
  }
}

void SmoothingServer::finish_step(std::vector<SentPiece>& out) {
  RTS_EXPECTS(current_report_ != nullptr);
  SimReport& report = *current_report_;
  const Time t = now_;

  // Retransmissions go out first: their deadlines are the closest, and
  // giving them priority within the same rate R keeps Eq. (2)'s link
  // constraint intact — recovery costs fresh throughput, never extra rate.
  // The queue is empty on every step of a lossless run; skip the call
  // outright rather than let it discover emptiness itself.
  const std::size_t out_start = out.size();
  const Bytes retx_sent =
      retx_queue_.empty() ? 0 : send_retransmissions(t, config_.rate, out);

  // Eq. (2): the send size is fixed from the pre-drop occupancy and the
  // rate left after retransmissions.
  const Bytes planned_send =
      std::min(config_.rate - retx_sent, buffer_.occupancy());

  // Eq. (3): shed whole slices until post-send occupancy is at most B.
  const Bytes target = config_.buffer + planned_send;
  if (buffer_.occupancy() > target) {
    const obs::Span drop_span(telemetry_, "policy.drop");
    if (shed_events_ != nullptr) shed_events_->add(1);
    policy_->shed(buffer_, target);
    RTS_ASSERT(buffer_.occupancy() <= target);
  }

  // Transmit in FIFO order at the maximal possible rate.
  const Bytes sent = buffer_.send(planned_send, out);
  RTS_ASSERT(sent == planned_send);
  report.max_link_bytes_per_step =
      std::max(report.max_link_bytes_per_step, retx_sent + sent);
  report.max_server_occupancy =
      std::max(report.max_server_occupancy, buffer_.occupancy());
  if (current_rec_ != nullptr) {
    for (std::size_t i = out_start; i < out.size(); ++i) {
      current_rec_->note_send(out[i].run_index, t, out[i].bytes);
    }
    current_rec_->step().server_occupancy = buffer_.occupancy();
  }
  RTS_ENSURES(buffer_.occupancy() <= config_.buffer);
  if (occupancy_hist_ != nullptr) {
    sent_bytes_->add(sent);
    retx_bytes_->add(retx_sent);
    nacks_seen_->add(step_nacks_);
    // Post-step occupancy distribution, one sample per step; Eq. (3)'s
    // |Bs(t)| <= B shows up as max() <= B.
    occupancy_hist_->record(buffer_.occupancy());
    max_occupancy_->update(buffer_.occupancy());
  }

  current_report_ = nullptr;
  current_rec_ = nullptr;
}

void SmoothingServer::step_into(Time t, const ArrivalBatch& arrivals,
                                std::span<const Nack> nacks, SimReport& report,
                                ScheduleRecorder* rec,
                                std::vector<SentPiece>& out) {
  begin_step(t, nacks, report, rec);
  for (std::size_t i = 0; i < arrivals.runs.size(); ++i) {
    admit(arrivals.runs[i], arrivals.first_index + i);
  }
  finish_step(out);
}

DropResult SmoothingServer::shed_below_value(double floor,
                                             SimReport& report) {
  RTS_EXPECTS(floor >= 0.0);
  // Drops route through the buffer's drop observer, which accounts into
  // current_report_ — bind it for the duration when called between steps.
  const bool in_step = current_report_ != nullptr;
  RTS_EXPECTS(!in_step || current_report_ == &report);
  if (!in_step) current_report_ = &report;
  const DropResult dropped =
      buffer_.empty() ? DropResult{} : shed::greedy_shed(buffer_, 0, floor);
  if (!in_step) current_report_ = nullptr;
  return dropped;
}

void SmoothingServer::account_residual(SimReport& report) const {
  for (std::size_t i = 0; i < buffer_.chunk_count(); ++i) {
    const Chunk& c = buffer_.chunk(i);
    report.residual.add(c.bytes(),
                        c.run->weight * static_cast<Weight>(c.slices),
                        c.slices);
  }
  for (std::size_t i = 0; i < retx_queue_.size(); ++i) {
    const RetxEntry& entry = retx_queue_[i];
    const SliceRun& run = *entry.piece.run;
    const std::int64_t whole = entry.piece.bytes / run.slice_size;
    report.residual.add(entry.piece.bytes,
                        run.weight * static_cast<Weight>(whole), whole);
  }
}

}  // namespace rtsmooth
