// Fundamental vocabulary types for the smoothing model (paper Sect. 2).
//
// The model is slotted: one frame of a real-time stream arrives per time
// step. "Bytes" are the unit of transmission (abstract equal-size units),
// "slices" the unit of dropping, frames the unit of playout timing.

#pragma once

#include <cstdint>
#include <limits>

namespace rtsmooth {

/// Slotted time. One slot = one frame interval of the source.
using Time = std::int64_t;

/// Data size in abstract bytes (the paper's equal-size transmissible units).
using Bytes = std::int64_t;

/// Slice weight for the local value functions of Sect. 2.2 (Definition 2.6).
using Weight = double;

/// "Never happens" sentinel for event times, the paper's time = infinity
/// convention (Definition 2.2).
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// MPEG frame type, used by the experimental value model of Sect. 5
/// (I : P : B weighted 12 : 8 : 1).
enum class FrameType : std::uint8_t { I, P, B, Other };

constexpr char to_char(FrameType t) {
  switch (t) {
    case FrameType::I: return 'I';
    case FrameType::P: return 'P';
    case FrameType::B: return 'B';
    case FrameType::Other: return '?';
  }
  return '?';
}

constexpr FrameType frame_type_from_char(char c) {
  switch (c) {
    case 'I': case 'i': return FrameType::I;
    case 'P': case 'p': return FrameType::P;
    case 'B': case 'b': return FrameType::B;
    default: return FrameType::Other;
  }
}

}  // namespace rtsmooth
