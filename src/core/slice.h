// Input streams as sets of slices (paper Definition 2.1).
//
// A slice is the atomic droppable unit; all bytes of a slice share its
// arrival time, playback time and drop time. Slices produced by cutting one
// frame at a given granularity are *identical* — same arrival, size and
// weight — and every algorithm in the paper is invariant under permuting
// identical slices. We therefore store runs of identical slices
// (`SliceRun`) instead of individual slices, which makes the "every byte is
// a slice" experiments (Sect. 5.1) tractable: a 38 KB frame is one run of
// 38912 unit slices, not 38912 objects.

#pragma once

#include <span>
#include <vector>

#include "core/types.h"
#include "util/assert.h"

namespace rtsmooth {

/// A maximal run of identical slices: `count` slices of `slice_size` bytes
/// each, all arriving at `arrival`, each carrying weight `weight`.
struct SliceRun {
  Time arrival = 0;
  Bytes slice_size = 1;      ///< bytes per slice, >= 1
  std::int64_t count = 1;    ///< number of identical slices, >= 1
  Weight weight = 1.0;       ///< weight per slice, >= 0
  FrameType frame_type = FrameType::Other;
  std::int64_t frame_index = -1;  ///< source frame ordinal, -1 if synthetic

  Bytes total_bytes() const { return slice_size * count; }
  Weight total_weight() const { return weight * static_cast<Weight>(count); }

  /// The greedy policy's ranking key (paper Sect. 4.1): w(s) / |s|.
  double byte_value() const {
    return static_cast<double>(weight) / static_cast<double>(slice_size);
  }

  bool operator==(const SliceRun&) const = default;
};

/// An input stream: slice runs ordered by arrival time. Immutable once
/// built; the simulator, policies and off-line solvers hold pointers into
/// the run vector, so a Stream must outlive every schedule computed on it.
class Stream {
 public:
  Stream() = default;

  /// Builds from runs in any order; they are stably sorted by arrival.
  /// Throws nothing; precondition violations (non-positive sizes/counts,
  /// negative weights or arrivals) abort via contracts.
  static Stream from_runs(std::vector<SliceRun> runs);

  std::span<const SliceRun> runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }
  std::size_t run_count() const { return runs_.size(); }

  /// Total size |B| of the stream in bytes (Definition 2.1).
  Bytes total_bytes() const { return total_bytes_; }
  Weight total_weight() const { return total_weight_; }
  std::int64_t total_slices() const { return total_slices_; }

  /// Largest slice size Lmax appearing in the stream (1 for unit slices).
  Bytes max_slice_size() const { return max_slice_size_; }

  /// Largest frame (= per-step arrival) size in bytes; the experimental
  /// buffer axis of Sect. 5 is expressed in multiples of this.
  Bytes max_frame_bytes() const { return max_frame_bytes_; }

  /// First and one-past-last arrival step. For an empty stream both are 0.
  Time first_arrival() const { return runs_.empty() ? 0 : runs_.front().arrival; }
  Time horizon() const { return runs_.empty() ? 0 : runs_.back().arrival + 1; }

  /// The paper's "average stream rate": total bytes divided by the number of
  /// frame slots spanned (Sect. 5.1).
  double average_rate() const;

  /// Runs arriving exactly at time t (contiguous span; empty if none).
  std::span<const SliceRun> arrivals_at(Time t) const;

  /// True if every slice has size 1 (the unit-slice model of Sect. 3.2).
  bool unit_slices() const { return max_slice_size_ == 1; }

 private:
  std::vector<SliceRun> runs_;
  Bytes total_bytes_ = 0;
  Weight total_weight_ = 0;
  std::int64_t total_slices_ = 0;
  Bytes max_slice_size_ = 1;
  Bytes max_frame_bytes_ = 0;
};

/// Arrivals of one step: a contiguous span of runs plus the index of its
/// first run within the stream (run identities are stream indices
/// throughout the library).
struct ArrivalBatch {
  std::span<const SliceRun> runs;
  std::size_t first_index = 0;
};

/// Cursor over a stream's arrivals in time order; the simulator's source.
/// Amortized O(1) per step.
class ArrivalCursor {
 public:
  explicit ArrivalCursor(const Stream& stream) : stream_(&stream) {}

  /// All runs arriving at step t. Steps must be queried in non-decreasing
  /// order; skipped steps' arrivals are skipped too.
  ArrivalBatch step(Time t);

  bool exhausted() const { return next_ >= stream_->run_count(); }

  /// Arrival step of the next unconsumed run, or kNever once exhausted.
  /// Strictly later than the last step() argument, so the event engine can
  /// use it directly as the next Arrival event.
  Time next_arrival() const {
    return exhausted() ? kNever : stream_->runs()[next_].arrival;
  }

 private:
  const Stream* stream_;
  std::size_t next_ = 0;
  Time last_t_ = std::numeric_limits<Time>::min();
};

}  // namespace rtsmooth
