// The server's random-access (push-out) FIFO buffer (paper Sect. 2.1, 3.1.1).
//
// Contents are stored as *chunks*: contiguous groups of identical slices
// from one SliceRun. Transmission consumes bytes from the head chunk; drops
// remove whole slices from any chunk. Because slices within a run are
// identical, removing "some k slices of chunk c" is well defined without
// tracking slice identities.
//
// The one stateful subtlety is the paper's no-preemption rule: "a slice
// cannot be dropped after it starts being transmitted". The buffer tracks
// how many bytes of the head slice have entered the link (`head_sent`) and
// refuses to drop that slice.

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/slice.h"
#include "core/types.h"
#include "util/assert.h"
#include "util/ring_buffer.h"

namespace rtsmooth {

/// A contiguous group of `slices` identical slices of `run`, in FIFO
/// position. If this is the head chunk, `head_sent` bytes of its first
/// slice may already be on the link.
struct Chunk {
  const SliceRun* run = nullptr;
  std::size_t run_index = 0;  ///< index of `run` in the source Stream
  std::int64_t slices = 0;
  Bytes head_sent = 0;  ///< bytes of the first slice already transmitted

  Bytes bytes() const { return run->slice_size * slices - head_sent; }
};

/// A group of bytes handed to the link: `bytes` bytes of run `run`,
/// completing `completed_slices` whole slices.
///
/// `retx_attempt` is 0 for a fresh transmission; a copy re-sent by the
/// recovery path (see core/generic_algorithm.h) carries the number of
/// retransmissions so far, so a lossy link's NACK can report how many times
/// this data has already been retried.
struct SentPiece {
  const SliceRun* run = nullptr;
  std::size_t run_index = 0;
  Bytes bytes = 0;
  std::int64_t completed_slices = 0;
  std::int32_t retx_attempt = 0;
};

/// Result of a drop operation, for accounting.
struct DropResult {
  Bytes bytes = 0;
  Weight weight = 0.0;
  std::int64_t slices = 0;
};

class ServerBuffer {
 public:
  ServerBuffer() = default;

  // -- state ---------------------------------------------------------------

  Bytes occupancy() const { return occupancy_; }
  bool empty() const { return occupancy_ == 0; }
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Pre-sizes the chunk ring so steady-state operation never reallocates.
  /// The server sizes it from its configuration (DESIGN.md Sect. 12): the
  /// buffer holds at most B + A(t) bytes before a shed, every chunk holds at
  /// least one byte, and chunks of the same run merge, so the count of
  /// arrival runs resident at once is a safe upper bound in practice.
  void reserve_chunks(std::size_t n) { chunks_.reserve(n); }

  /// Chunk at FIFO position i (0 = head / oldest).
  const Chunk& chunk(std::size_t i) const {
    RTS_EXPECTS(i < chunks_.size());
    return chunks_[i];
  }

  /// Number of slices of chunk i that may legally be dropped: all of them,
  /// except a head slice that has started transmission.
  std::int64_t droppable_slices(std::size_t i) const {
    const Chunk& c = chunk(i);
    if (i == 0 && c.head_sent > 0) return c.slices - 1;
    return c.slices;
  }

  // -- mutation ------------------------------------------------------------

  /// Appends `count` slices of `run` at the tail (a frame arriving).
  /// Merges with the tail chunk when it is the same run.
  void push(const SliceRun& run, std::size_t run_index, std::int64_t count) {
    RTS_EXPECTS(count >= 1);
    occupancy_ += run.slice_size * count;
    if (!chunks_.empty() && chunks_.back().run == &run) {
      chunks_.back().slices += count;
      return;
    }
    chunks_.push_back(Chunk{.run = &run, .run_index = run_index,
                            .slices = count, .head_sent = 0});
  }

  /// Drops `k` slices from chunk i. Requires 1 <= k <= droppable_slices(i).
  /// Returns the freed bytes/weight. Chunk indices of later chunks shift
  /// down if the chunk empties; callers iterating while dropping must
  /// re-read chunk_count().
  DropResult drop_slices(std::size_t i, std::int64_t k) {
    RTS_EXPECTS(i < chunks_.size());
    RTS_EXPECTS(k >= 1 && k <= droppable_slices(i));
    Chunk& c = chunks_[i];
    c.slices -= k;
    const DropResult freed{.bytes = c.run->slice_size * k,
                           .weight = c.run->weight * static_cast<Weight>(k),
                           .slices = k};
    occupancy_ -= freed.bytes;
    RTS_ASSERT(occupancy_ >= 0);
    if (on_drop_) on_drop_(*c.run, c.run_index, k);
    if (c.slices == 0) {
      RTS_ASSERT(c.head_sent == 0);  // droppable_slices() protects the head
      chunks_.erase(i);
    }
    return freed;
  }

  /// Transmits up to `budget` bytes from the head in FIFO order, splitting
  /// chunks and slices as needed. Appends the sent pieces to `out` and
  /// returns the number of bytes actually sent (min(budget, occupancy)).
  /// Defined inline: this is the innermost statement of every simulation
  /// step and inlining it into the server lets the compiler keep the head
  /// chunk's fields in registers across the budget loop.
  Bytes send(Bytes budget, std::vector<SentPiece>& out) {
    RTS_EXPECTS(budget >= 0);
    Bytes remaining = std::min(budget, occupancy_);
    const Bytes sent = remaining;
    while (remaining > 0) {
      RTS_ASSERT(!chunks_.empty());
      Chunk& head = chunks_.front();
      const Bytes take = std::min(remaining, head.bytes());
      const Bytes progress = head.head_sent + take;
      const Bytes slice_size = head.run->slice_size;
      // Unit slices ("every byte is a slice", Sect. 5.1) are the dominant
      // experimental shape; skipping the two integer divisions for them
      // keeps this loop off the top of the end-to-end profile.
      const std::int64_t completed =
          slice_size == 1 ? progress : progress / slice_size;
      out.push_back(SentPiece{.run = head.run,
                              .run_index = head.run_index,
                              .bytes = take,
                              .completed_slices = completed});
      head.slices -= completed;
      head.head_sent = slice_size == 1 ? 0 : progress % slice_size;
      occupancy_ -= take;
      remaining -= take;
      if (head.slices == 0) {
        RTS_ASSERT(head.head_sent == 0);
        chunks_.pop_front();
      }
    }
    RTS_ENSURES(occupancy_ >= 0);
    return sent;
  }

  /// True if the head slice is partially transmitted.
  bool head_in_transmission() const {
    return !chunks_.empty() && chunks_.front().head_sent > 0;
  }

  /// Observer invoked on every drop_slices() with the victim run and slice
  /// count. The owning server uses it for loss accounting, so policies never
  /// handle bookkeeping.
  using DropObserver =
      std::function<void(const SliceRun&, std::size_t run_index,
                         std::int64_t slices)>;
  void set_drop_observer(DropObserver observer) {
    on_drop_ = std::move(observer);
  }

 private:
  /// Chunk records live in a ring-buffer arena indexed by FIFO position:
  /// each entry is a (run, slice count, head offset) descriptor into the
  /// Stream's immutable SliceRun table, never a materialized per-slice
  /// object. See DESIGN.md Sect. 12 for the layout and capacity formula.
  RingBuffer<Chunk> chunks_;
  Bytes occupancy_ = 0;
  DropObserver on_drop_;
};

}  // namespace rtsmooth
