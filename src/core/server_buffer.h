// The server's random-access (push-out) FIFO buffer (paper Sect. 2.1, 3.1.1).
//
// Contents are stored as *chunks*: contiguous groups of identical slices
// from one SliceRun. Transmission consumes bytes from the head chunk; drops
// remove whole slices from any chunk. Because slices within a run are
// identical, removing "some k slices of chunk c" is well defined without
// tracking slice identities.
//
// The one stateful subtlety is the paper's no-preemption rule: "a slice
// cannot be dropped after it starts being transmitted". The buffer tracks
// how many bytes of the head slice have entered the link (`head_sent`) and
// refuses to drop that slice.

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth {

/// A contiguous group of `slices` identical slices of `run`, in FIFO
/// position. If this is the head chunk, `head_sent` bytes of its first
/// slice may already be on the link.
struct Chunk {
  const SliceRun* run = nullptr;
  std::size_t run_index = 0;  ///< index of `run` in the source Stream
  std::int64_t slices = 0;
  Bytes head_sent = 0;  ///< bytes of the first slice already transmitted

  Bytes bytes() const { return run->slice_size * slices - head_sent; }
};

/// A group of bytes handed to the link: `bytes` bytes of run `run`,
/// completing `completed_slices` whole slices.
///
/// `retx_attempt` is 0 for a fresh transmission; a copy re-sent by the
/// recovery path (see core/generic_algorithm.h) carries the number of
/// retransmissions so far, so a lossy link's NACK can report how many times
/// this data has already been retried.
struct SentPiece {
  const SliceRun* run = nullptr;
  std::size_t run_index = 0;
  Bytes bytes = 0;
  std::int64_t completed_slices = 0;
  std::int32_t retx_attempt = 0;
};

/// Result of a drop operation, for accounting.
struct DropResult {
  Bytes bytes = 0;
  Weight weight = 0.0;
  std::int64_t slices = 0;
};

class ServerBuffer {
 public:
  ServerBuffer() = default;

  // -- state ---------------------------------------------------------------

  Bytes occupancy() const { return occupancy_; }
  bool empty() const { return occupancy_ == 0; }
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Chunk at FIFO position i (0 = head / oldest).
  const Chunk& chunk(std::size_t i) const;

  /// Number of slices of chunk i that may legally be dropped: all of them,
  /// except a head slice that has started transmission.
  std::int64_t droppable_slices(std::size_t i) const;

  // -- mutation ------------------------------------------------------------

  /// Appends `count` slices of `run` at the tail (a frame arriving).
  /// Merges with the tail chunk when it is the same run.
  void push(const SliceRun& run, std::size_t run_index, std::int64_t count);

  /// Drops `k` slices from chunk i. Requires 1 <= k <= droppable_slices(i).
  /// Returns the freed bytes/weight. Chunk indices of later chunks shift
  /// down if the chunk empties; callers iterating while dropping must
  /// re-read chunk_count().
  DropResult drop_slices(std::size_t i, std::int64_t k);

  /// Transmits up to `budget` bytes from the head in FIFO order, splitting
  /// chunks and slices as needed. Appends the sent pieces to `out` and
  /// returns the number of bytes actually sent (min(budget, occupancy)).
  Bytes send(Bytes budget, std::vector<SentPiece>& out);

  /// True if the head slice is partially transmitted.
  bool head_in_transmission() const {
    return !chunks_.empty() && chunks_.front().head_sent > 0;
  }

  /// Observer invoked on every drop_slices() with the victim run and slice
  /// count. The owning server uses it for loss accounting, so policies never
  /// handle bookkeeping.
  using DropObserver =
      std::function<void(const SliceRun&, std::size_t run_index,
                         std::int64_t slices)>;
  void set_drop_observer(DropObserver observer) {
    on_drop_ = std::move(observer);
  }

 private:
  std::deque<Chunk> chunks_;
  Bytes occupancy_ = 0;
  DropObserver on_drop_;
};

}  // namespace rtsmooth
