// Drop-policy interface.
//
// The generic algorithm of Sect. 3.1 deliberately leaves the *identity* of
// dropped slices unspecified — "the server is free to discard what seems to
// be the least damaging data". This interface is that degree of freedom:
// Theorem 3.5's throughput optimality holds for every implementation, while
// the weighted benefit (Sect. 4) depends on the choice (Greedy vs Tail-Drop
// vs ...).

#pragma once

#include <memory>
#include <string_view>

#include "core/server_buffer.h"
#include "core/types.h"

namespace rtsmooth {

/// Strategy deciding *which* slices to discard on overflow.
///
/// Contract for `shed`: called with buf.occupancy() > target; must drop
/// whole droppable slices until buf.occupancy() <= target. The buffer always
/// contains enough droppable bytes for this to be possible (the in-flight
/// head slice is accounted for by the caller). Implementations must never
/// touch non-droppable slices; ServerBuffer enforces that with contracts.
class DropPolicy {
 public:
  virtual ~DropPolicy() = default;

  DropPolicy(const DropPolicy&) = delete;
  DropPolicy& operator=(const DropPolicy&) = delete;

  /// Sheds slices until occupancy <= target. Returns the total dropped.
  virtual DropResult shed(ServerBuffer& buf, Bytes target) = 0;

  /// Hook invoked once per step before arrivals, enabling "early drop"
  /// (pro-active) policies (paper Sect. 2.1 / open problem in Sect. 6).
  /// `target` is the configured buffer bound B. Default: no early drops.
  virtual DropResult early_drop(ServerBuffer& buf, Bytes target, Time now);

  virtual std::string_view name() const = 0;

  /// Fresh instance with the same configuration (policies are stateful —
  /// e.g. RandomDrop's RNG — so sweeps clone rather than share).
  virtual std::unique_ptr<DropPolicy> clone() const = 0;

 protected:
  DropPolicy() = default;

  /// Helper for subclasses: drop up to `k` slices from chunk `i`, clamped to
  /// what is droppable; returns what was freed.
  static DropResult drop_clamped(ServerBuffer& buf, std::size_t i,
                                 std::int64_t k);
};

inline DropResult DropPolicy::early_drop(ServerBuffer&, Bytes, Time) {
  return {};
}

inline DropResult DropPolicy::drop_clamped(ServerBuffer& buf, std::size_t i,
                                           std::int64_t k) {
  const std::int64_t can = buf.droppable_slices(i);
  const std::int64_t n = std::min(k, can);
  if (n <= 0) return {};
  return buf.drop_slices(i, n);
}

}  // namespace rtsmooth
