// Performance measures of a smoothing schedule (paper Definition 2.4 and the
// experimental metrics of Sect. 5).

#pragma once

#include <array>
#include <iosfwd>

#include "core/types.h"

namespace rtsmooth {

/// Byte/weight/slice tallies for one disposition class (offered, played,
/// dropped at the server, ...).
struct Tally {
  Bytes bytes = 0;
  Weight weight = 0.0;
  std::int64_t slices = 0;

  void add(Bytes b, Weight w, std::int64_t n) {
    bytes += b;
    weight += w;
    slices += n;
  }
  Tally& operator+=(const Tally& o) {
    add(o.bytes, o.weight, o.slices);
    return *this;
  }
  bool operator==(const Tally&) const = default;
};

/// Counts of steps on which one of the paper's guarantees (Lemmas 3.2-3.4)
/// failed to hold. On the paper's lossless constant-delay link these are all
/// provably zero; a faulty channel violates them *gracefully* — the
/// InvariantMonitor (src/faults/) records how often instead of aborting.
struct InvariantViolations {
  std::int64_t server_occupancy = 0;  ///< |Bs(t)| exceeded B after a step
  std::int64_t server_sojourn = 0;    ///< a buffered byte older than B/R (Lemma 3.2)
  std::int64_t client_overflow = 0;   ///< steps with client-side eviction (Lemma 3.4)
  std::int64_t client_underflow = 0;  ///< steps with late bytes or a partial
                                      ///< slice at playout (Lemma 3.3)
  Time first = kNever;                ///< step of the earliest violation

  std::int64_t total() const {
    return server_occupancy + server_sojourn + client_overflow +
           client_underflow;
  }
  bool any() const { return total() > 0; }

  InvariantViolations& operator+=(const InvariantViolations& o);
  bool operator==(const InvariantViolations&) const = default;
};

/// Aggregate report of one simulated schedule.
///
/// Conservation invariant (checked by `conserves()`): every offered slice is
/// either played, dropped at the server, dropped at the client (overflow or
/// deadline miss), lost on the link and written off, or resident at end of
/// simulation.
struct SimReport {
  Tally offered;
  Tally played;
  Tally dropped_server;          ///< server overflow + proactive early drops
  Tally dropped_client_overflow; ///< client buffer full on delivery
  Tally dropped_client_late;     ///< bytes delivered after playout deadline
  Tally lost_link;               ///< erased in flight, written off by recovery
  Tally residual;                ///< still in flight / buffered at end

  /// Per frame type (I/P/B/Other), offered and played, for the weighted-loss
  /// breakdowns of Sect. 5.
  std::array<Tally, 4> offered_by_type{};
  std::array<Tally, 4> played_by_type{};

  /// Resource requirements actually observed (Definition 2.4): least upper
  /// bounds over the run.
  Bytes max_server_occupancy = 0;
  Bytes max_client_occupancy = 0;
  Bytes max_link_bytes_per_step = 0;

  Time steps = 0;  ///< simulated steps (arrival horizon + drain)

  /// Fault/recovery observables (all zero on a lossless link).
  Bytes retransmitted_bytes = 0;  ///< bytes re-sent by the recovery path
  Time stall_steps = 0;           ///< steps the client spent rebuffering
  /// Peak deadline miss in steps: how far past its playout slot the latest
  /// byte written off as dropped_client_late arrived. 0 when the schedule
  /// met every deadline (the paper's lossless-link guarantee).
  Time max_lateness = 0;
  InvariantViolations invariants; ///< recorded by the InvariantMonitor

  /// The paper's weighted loss (Sect. 5): lost weight / offered weight.
  double weighted_loss() const;
  /// Benefit as a fraction of the total offered weight (Fig. 4's y axis).
  double benefit_fraction() const;
  /// Unweighted byte loss fraction.
  double byte_loss() const;
  /// Throughput (Definition 2.4): bytes played out.
  Bytes throughput() const { return played.bytes; }
  Weight benefit() const { return played.weight; }

  bool conserves() const;

  SimReport& operator+=(const SimReport& o);
  /// Exact field-wise equality — the "byte-identical reports" contract the
  /// zero-fault identity tests pin (faulty links at severity 0 must be
  /// indistinguishable from FixedDelayLink).
  bool operator==(const SimReport&) const = default;
};

std::ostream& operator<<(std::ostream& os, const SimReport& r);

}  // namespace rtsmooth
