// Performance measures of a smoothing schedule (paper Definition 2.4 and the
// experimental metrics of Sect. 5).

#pragma once

#include <array>
#include <iosfwd>

#include "core/types.h"

namespace rtsmooth {

/// Byte/weight/slice tallies for one disposition class (offered, played,
/// dropped at the server, ...).
struct Tally {
  Bytes bytes = 0;
  Weight weight = 0.0;
  std::int64_t slices = 0;

  void add(Bytes b, Weight w, std::int64_t n) {
    bytes += b;
    weight += w;
    slices += n;
  }
  Tally& operator+=(const Tally& o) {
    add(o.bytes, o.weight, o.slices);
    return *this;
  }
};

/// Aggregate report of one simulated schedule.
///
/// Conservation invariant (checked by `conserves()`): every offered slice is
/// either played, dropped at the server, dropped at the client (overflow or
/// deadline miss), or resident at end of simulation.
struct SimReport {
  Tally offered;
  Tally played;
  Tally dropped_server;          ///< server overflow + proactive early drops
  Tally dropped_client_overflow; ///< client buffer full on delivery
  Tally dropped_client_late;     ///< bytes delivered after playout deadline
  Tally residual;                ///< still in flight / buffered at end

  /// Per frame type (I/P/B/Other), offered and played, for the weighted-loss
  /// breakdowns of Sect. 5.
  std::array<Tally, 4> offered_by_type{};
  std::array<Tally, 4> played_by_type{};

  /// Resource requirements actually observed (Definition 2.4): least upper
  /// bounds over the run.
  Bytes max_server_occupancy = 0;
  Bytes max_client_occupancy = 0;
  Bytes max_link_bytes_per_step = 0;

  Time steps = 0;  ///< simulated steps (arrival horizon + drain)

  /// The paper's weighted loss (Sect. 5): lost weight / offered weight.
  double weighted_loss() const;
  /// Benefit as a fraction of the total offered weight (Fig. 4's y axis).
  double benefit_fraction() const;
  /// Unweighted byte loss fraction.
  double byte_loss() const;
  /// Throughput (Definition 2.4): bytes played out.
  Bytes throughput() const { return played.bytes; }
  Weight benefit() const { return played.weight; }

  bool conserves() const;

  SimReport& operator+=(const SimReport& o);
};

std::ostream& operator<<(std::ostream& os, const SimReport& r);

}  // namespace rtsmooth
