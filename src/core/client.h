// The client: reconstruction buffer and real-time playout (paper
// Sect. 3.1.2).
//
// Playout rule: frame t plays at t + P + D (the timer-based description in
// the paper — wait D after the first arrival, then one frame per step — is
// equivalent under the generic server, and a test pins that equivalence).
// A slice plays iff all its bytes are stored at its playout step.
//
// The client also implements the two failure modes of a misconfigured
// system (Sect. 3.3): bytes that do not fit in a finite client buffer are
// refused (client overflow), and bytes delivered after their playout step
// are useless (deadline miss / underflow). Under B = R*D neither occurs
// (Lemmas 3.3, 3.4) and tests assert exactly that.
//
// On a faulty channel (src/faults/) underflow *does* occur, and the
// UnderflowPolicy picks the degradation mode: Skip plays what is complete and
// conceals the rest (weighted loss), Stall pauses playout — shifting the
// timer base so every later deadline moves with it — for up to `max_stall`
// steps while a partially-arrived slice may still be completed by a delayed
// delivery or a retransmission.

#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/metrics.h"
#include "core/schedule.h"
#include "core/server_buffer.h"
#include "core/slice.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace rtsmooth {

/// How the client decides playout times.
enum class PlayoutMode {
  /// PT(frame k) = k + P + D — the analytical convention used throughout
  /// the paper's proofs. Requires knowing P (i.e. synchronized clocks).
  ArrivalPlusOffset,
  /// The paper's Sect. 3.3 protocol: no clock synchronization — "the
  /// client just sets the timer to D when the first slice arrives; when
  /// this timer goes off, the client starts playing out one frame at a
  /// step". Equivalent to the above under the generic server on a
  /// zero-jitter link (a test pins this); on a jittery link it self-
  /// calibrates to the first byte's actual delay.
  TimerFromFirstDelivery,
};

/// What the client does when the frame due for playout is incomplete.
enum class UnderflowPolicy {
  /// Concealment: play the complete slices, count the partial remainder as
  /// weighted loss, keep the playout clock running. The paper's implicit
  /// behaviour.
  Skip,
  /// Rebuffer-and-resync: pause playout (shifting the timer base, so all
  /// later deadlines shift too) while the due frame holds a partially
  /// arrived slice whose missing bytes are not known lost, up to
  /// `max_stall` steps per frame, then give up and play what is complete.
  /// Gaps the link has written off (NACKed past recovery) never stall —
  /// those bytes can no longer arrive.
  Stall,
};

class Client {
 public:
  /// `capacity` is Bc in bytes; pass kUnbounded for an infinite buffer.
  /// `playout_offset` = P + D: frame t plays at t + playout_offset.
  /// For TimerFromFirstDelivery, `smoothing_delay` (= D) must be given:
  /// the timer arms at first delivery + D.
  /// `max_stall` bounds the rebuffering spent on any one frame (Stall only).
  Client(const Stream& stream, Bytes capacity, Time playout_offset,
         PlayoutMode mode = PlayoutMode::ArrivalPlusOffset,
         Time smoothing_delay = -1,
         UnderflowPolicy underflow = UnderflowPolicy::Skip,
         Time max_stall = 0);

  static constexpr Bytes kUnbounded = std::numeric_limits<Bytes>::max();

  /// Accepts the pieces delivered by the link at step t. Late bytes are
  /// accounted immediately; in-time bytes are stored *tentatively* — the
  /// capacity bound |Bc(t)| <= Bc applies to the post-playout state
  /// (Lemma 3.4 counts the buffer after frame t has left), so the overflow
  /// decision is deferred to play().
  void deliver(Time t, std::span<const SentPiece> pieces, SimReport& report,
               ScheduleRecorder* rec);

  /// Plays the frame scheduled for step t (arrival time t - playout_offset),
  /// then evicts whatever exceeds the capacity — newest delivered bytes
  /// first, since those are the ones that "did not fit". Must be called
  /// once per step, after deliver().
  void play(Time t, SimReport& report, ScheduleRecorder* rec);

  /// Records bytes of run `run_index` that were erased in flight and written
  /// off by the server's recovery path — they will never be delivered.
  /// finalize() folds them into `report.lost_link` with consistent slice and
  /// weight accounting.
  void add_link_loss(std::size_t run_index, Bytes bytes);

  /// Converts end-of-simulation per-run byte losses into slice/weight
  /// tallies. Call exactly once, after the final step.
  void finalize(SimReport& report);

  Bytes occupancy() const { return occupancy_; }
  Time playout_offset() const { return offset_; }

  /// Earliest step >= now at which play() would do more than sample an
  /// empty buffer: the playout step of the first run at or after the frame
  /// cursor (zero-stored frames count — playing them marks played_out and
  /// can stall). kNever when no such step exists, including timer mode
  /// before the timer arms. The event engine bounds skippable spans with
  /// this, so play() is never skipped on a step where it would act.
  Time next_playout_event(Time now) const;

  /// Registry back-fill for `n` quiescent steps the event engine skipped:
  /// exactly the per-step occupancy samples play() records for an empty
  /// buffer. No-op while telemetry is off.
  void record_idle_steps(std::int64_t n);

  /// Installs the telemetry handle (null by default: no cost). The client
  /// records per-step occupancy, played/late/overflow byte counters, and the
  /// distribution of rebuffering run lengths ("client.stall_run_length").
  void set_telemetry(obs::Telemetry telemetry);

  // -- observables for the InvariantMonitor (monotone running totals) ------
  Time stall_steps() const { return stall_shift_; }
  std::int64_t underflow_events() const { return underflow_events_; }
  Bytes late_bytes_so_far() const { return total_late_; }
  Bytes overflow_bytes_so_far() const { return total_overflow_; }
  /// Bytes of incomplete slices discarded at their playout step.
  Bytes leftover_bytes_so_far() const { return total_leftover_; }
  Bytes capacity() const { return capacity_; }

 private:
  struct RunState {
    Bytes stored = 0;         ///< bytes in the buffer, not yet played
    Bytes overflow_lost = 0;  ///< bytes refused for lack of space
    Bytes late_lost = 0;      ///< bytes delivered after the playout step
    Bytes leftover_lost = 0;  ///< bytes of incomplete slices at playout
    Bytes link_lost = 0;      ///< bytes erased in flight, written off
    std::int64_t played = 0;  ///< complete slices played
    bool played_out = false;  ///< this run's playout step has passed
  };

  void play_frame(Time t, SimReport& report, ScheduleRecorder* rec);
  void settle_capacity(ScheduleRecorder* rec);
  /// Playout step for the frame arriving at `arrival`, or kNever if it is
  /// not yet determined (timer mode before the first delivery). Inline:
  /// deliver() calls this once per piece on the hot path.
  Time playout_step(Time arrival) const {
    if (mode_ == PlayoutMode::ArrivalPlusOffset) {
      return arrival + offset_ + stall_shift_;
    }
    if (timer_base_ == kNever) return kNever;  // timer not armed yet
    return timer_base_ + stall_shift_ + (arrival - timer_frame_);
  }

  const Stream* stream_;
  Bytes capacity_;
  Time offset_;
  PlayoutMode mode_;
  Time smoothing_delay_;
  UnderflowPolicy underflow_;
  Time max_stall_;
  Time timer_base_ = kNever;        ///< playout step of timer_frame_
  Time timer_frame_ = kNever;       ///< arrival time anchoring the timer
  Time stall_shift_ = 0;            ///< total rebuffering; shifts every deadline
  Time current_frame_stall_ = 0;    ///< stall spent on the frame now due
  std::int64_t underflow_events_ = 0;
  Bytes total_late_ = 0;
  Bytes total_overflow_ = 0;
  Bytes total_leftover_ = 0;
  Bytes occupancy_ = 0;
  /// First run not yet scanned for playout. Frame times are non-decreasing
  /// across play_frame() calls (stalls repeat a frame, never rewind), so the
  /// due span is found by a monotone scan instead of a per-step binary
  /// search. Advanced lazily; runs are only skipped once their arrival step
  /// is strictly before the frame being played.
  std::size_t play_cursor_ = 0;
  std::vector<RunState> runs_;
  /// Pieces stored this step, newest last — the overflow eviction order.
  std::vector<std::pair<std::size_t, Bytes>> arrived_this_step_;
  bool finalized_ = false;
  // Instruments resolved by set_telemetry(); null while telemetry is off.
  obs::Counter* played_bytes_ = nullptr;
  obs::Counter* late_bytes_ = nullptr;
  obs::Counter* overflow_bytes_ = nullptr;
  obs::Counter* underflow_count_ = nullptr;
  obs::Histogram* occupancy_hist_ = nullptr;
  obs::Histogram* stall_run_hist_ = nullptr;
  obs::Gauge* max_occupancy_ = nullptr;
};

}  // namespace rtsmooth
