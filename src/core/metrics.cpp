#include "core/metrics.h"

#include <algorithm>
#include <ostream>

namespace rtsmooth {

double SimReport::weighted_loss() const {
  if (offered.weight <= 0.0) return 0.0;
  return 1.0 - played.weight / offered.weight;
}

double SimReport::benefit_fraction() const {
  if (offered.weight <= 0.0) return 1.0;
  return played.weight / offered.weight;
}

double SimReport::byte_loss() const {
  if (offered.bytes == 0) return 0.0;
  return 1.0 -
         static_cast<double>(played.bytes) / static_cast<double>(offered.bytes);
}

bool SimReport::conserves() const {
  const Bytes accounted = played.bytes + dropped_server.bytes +
                          dropped_client_overflow.bytes +
                          dropped_client_late.bytes + lost_link.bytes +
                          residual.bytes;
  const std::int64_t slices_accounted =
      played.slices + dropped_server.slices + dropped_client_overflow.slices +
      dropped_client_late.slices + lost_link.slices + residual.slices;
  return accounted == offered.bytes && slices_accounted == offered.slices;
}

InvariantViolations& InvariantViolations::operator+=(
    const InvariantViolations& o) {
  server_occupancy += o.server_occupancy;
  server_sojourn += o.server_sojourn;
  client_overflow += o.client_overflow;
  client_underflow += o.client_underflow;
  first = std::min(first, o.first);
  return *this;
}

SimReport& SimReport::operator+=(const SimReport& o) {
  offered += o.offered;
  played += o.played;
  dropped_server += o.dropped_server;
  dropped_client_overflow += o.dropped_client_overflow;
  dropped_client_late += o.dropped_client_late;
  lost_link += o.lost_link;
  residual += o.residual;
  for (std::size_t i = 0; i < offered_by_type.size(); ++i) {
    offered_by_type[i] += o.offered_by_type[i];
    played_by_type[i] += o.played_by_type[i];
  }
  max_server_occupancy = std::max(max_server_occupancy, o.max_server_occupancy);
  max_client_occupancy = std::max(max_client_occupancy, o.max_client_occupancy);
  max_link_bytes_per_step =
      std::max(max_link_bytes_per_step, o.max_link_bytes_per_step);
  steps += o.steps;
  retransmitted_bytes += o.retransmitted_bytes;
  stall_steps += o.stall_steps;
  max_lateness = std::max(max_lateness, o.max_lateness);
  invariants += o.invariants;
  return *this;
}

std::ostream& operator<<(std::ostream& os, const SimReport& r) {
  os << "offered " << r.offered.bytes << "B/" << r.offered.slices
     << " slices (w=" << r.offered.weight << "), played " << r.played.bytes
     << "B (w=" << r.played.weight << "), server-drop "
     << r.dropped_server.bytes << "B, client-drop "
     << (r.dropped_client_overflow.bytes + r.dropped_client_late.bytes)
     << "B, weighted loss " << r.weighted_loss() * 100.0 << "%";
  if (r.lost_link.bytes > 0) os << ", link-lost " << r.lost_link.bytes << "B";
  if (r.retransmitted_bytes > 0) os << ", retx " << r.retransmitted_bytes << "B";
  if (r.stall_steps > 0) os << ", stalled " << r.stall_steps;
  if (r.max_lateness > 0) os << ", max-late " << r.max_lateness;
  if (r.invariants.any()) {
    os << ", invariant violations " << r.invariants.total() << " (first at t="
       << r.invariants.first << ")";
  }
  return os;
}

}  // namespace rtsmooth
