#include "core/client.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth {
namespace {

std::size_t type_index(FrameType t) { return static_cast<std::size_t>(t); }

}  // namespace

Client::Client(const Stream& stream, Bytes capacity, Time playout_offset,
               PlayoutMode mode, Time smoothing_delay,
               UnderflowPolicy underflow, Time max_stall)
    : stream_(&stream),
      capacity_(capacity),
      offset_(playout_offset),
      mode_(mode),
      smoothing_delay_(smoothing_delay),
      underflow_(underflow),
      max_stall_(max_stall),
      runs_(stream.run_count()) {
  RTS_EXPECTS(capacity >= 1);
  RTS_EXPECTS(playout_offset >= 0);
  RTS_EXPECTS(mode == PlayoutMode::ArrivalPlusOffset || smoothing_delay >= 0);
  RTS_EXPECTS(max_stall >= 0);
  // Steady-state allocation freedom: the per-step arrival scratch grows at
  // most to the largest number of pieces delivered in one step, which the
  // first few steps establish; reserving a handful avoids even that.
  arrived_this_step_.reserve(8);
}

void Client::set_telemetry(obs::Telemetry telemetry) {
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  // Eager creation keeps snapshots structurally identical across runs (a
  // lossless run reports client.late_bytes = 0 rather than omitting it).
  played_bytes_ = &reg.counter("client.played_bytes");
  late_bytes_ = &reg.counter("client.late_bytes");
  overflow_bytes_ = &reg.counter("client.overflow_bytes");
  underflow_count_ = &reg.counter("client.underflow_events");
  occupancy_hist_ = &reg.histogram("client.occupancy",
                                   obs::HistogramSpec::exponential(1, 32));
  stall_run_hist_ = &reg.histogram("client.stall_run_length",
                                   obs::HistogramSpec::exponential(1, 16));
  max_occupancy_ = &reg.gauge("client.max_occupancy");
}

void Client::deliver(Time t, std::span<const SentPiece> pieces,
                     SimReport& report, ScheduleRecorder* rec) {
  (void)report;
  for (const SentPiece& piece : pieces) {
    RTS_ASSERT(piece.bytes > 0);
    if (rec != nullptr) rec->note_receive(piece.run_index, t, piece.bytes);
    RunState& rs = runs_[piece.run_index];
    if (mode_ == PlayoutMode::TimerFromFirstDelivery &&
        timer_base_ == kNever) {
      // Sect. 3.3: arm the timer on the first slice; its frame plays D
      // steps from now, and one frame per step thereafter.
      timer_frame_ = piece.run->arrival;
      timer_base_ = t + smoothing_delay_;
    }
    const Time playout_at = playout_step(piece.run->arrival);
    if (rs.played_out || playout_at < t) {
      // Deadline miss: the frame's playout step has passed (underflow at
      // playout already charged the slice; here we only account bytes).
      rs.late_lost += piece.bytes;
      total_late_ += piece.bytes;
      if (late_bytes_ != nullptr) late_bytes_->add(piece.bytes);
      if (rec != nullptr) rec->step().dropped_client += piece.bytes;
      continue;
    }
    // Tentative store; play() settles the capacity bound afterwards.
    rs.stored += piece.bytes;
    occupancy_ += piece.bytes;
    arrived_this_step_.push_back({piece.run_index, piece.bytes});
  }
}

void Client::play(Time t, SimReport& report, ScheduleRecorder* rec) {
  play_frame(t, report, rec);
  settle_capacity(rec);
  report.max_client_occupancy =
      std::max(report.max_client_occupancy, occupancy_);
  if (occupancy_hist_ != nullptr) {
    occupancy_hist_->record(occupancy_);
    max_occupancy_->update(occupancy_);
  }
  RTS_ENSURES(occupancy_ >= 0);
}

void Client::play_frame(Time t, SimReport& report, ScheduleRecorder* rec) {
  Time frame_time;
  if (mode_ == PlayoutMode::ArrivalPlusOffset) {
    frame_time = t - offset_ - stall_shift_;
  } else {
    if (timer_base_ == kNever || t < timer_base_ + stall_shift_) return;
    frame_time = timer_frame_ + (t - timer_base_ - stall_shift_);
  }
  if (frame_time < 0) return;
  // Monotone due-span scan: frame_time never decreases across calls, so the
  // cursor replaces arrivals_at()'s per-step binary search. The cursor only
  // skips runs already strictly in the past — a stalled frame re-derives the
  // same span on the next call.
  const auto all = stream_->runs();
  while (play_cursor_ < all.size() &&
         all[play_cursor_].arrival < frame_time) {
    ++play_cursor_;
  }
  std::size_t due_end = play_cursor_;
  while (due_end < all.size() && all[due_end].arrival == frame_time) {
    ++due_end;
  }
  const std::span<const SliceRun> due =
      all.subspan(play_cursor_, due_end - play_cursor_);
  if (underflow_ == UnderflowPolicy::Stall && !due.empty() &&
      current_frame_stall_ < max_stall_) {
    // A partially-arrived slice signals bytes still in flight (delayed or
    // being retransmitted): pause playout one step and re-check. A frame
    // with only whole slices stored gets no benefit from waiting — the
    // missing slices were dropped at the server on purpose — and neither
    // does a gap the link has already written off (`link_lost`): stalling
    // for bytes that can never arrive only delays every later frame.
    for (const SliceRun& run : due) {
      const auto run_index =
          static_cast<std::size_t>(&run - stream_->runs().data());
      const RunState& rs = runs_[run_index];
      if (!rs.played_out && (rs.stored + rs.link_lost) % run.slice_size != 0) {
        ++stall_shift_;
        ++current_frame_stall_;
        return;
      }
    }
  }
  if (stall_run_hist_ != nullptr && current_frame_stall_ > 0) {
    // The frame now due stops stalling here — either complete at last or out
    // of budget; either way the run length is final.
    stall_run_hist_->record(current_frame_stall_);
  }
  current_frame_stall_ = 0;
  for (const SliceRun& run : due) {
    const auto run_index =
        static_cast<std::size_t>(&run - stream_->runs().data());
    RunState& rs = runs_[run_index];
    RTS_ASSERT(!rs.played_out);
    rs.played_out = true;
    const std::int64_t complete = rs.stored / run.slice_size;
    const Bytes played_bytes = complete * run.slice_size;
    const Bytes leftover = rs.stored - played_bytes;
    rs.played = complete;
    rs.leftover_lost += leftover;
    total_leftover_ += leftover;
    if (leftover > 0) {
      ++underflow_events_;
      if (underflow_count_ != nullptr) underflow_count_->add(1);
    }
    if (played_bytes_ != nullptr) played_bytes_->add(played_bytes);
    occupancy_ -= rs.stored;
    rs.stored = 0;
    report.played.add(played_bytes, run.weight * static_cast<Weight>(complete),
                      complete);
    report.played_by_type[type_index(run.frame_type)].add(
        played_bytes, run.weight * static_cast<Weight>(complete), complete);
    if (rec != nullptr) {
      rec->run(run_index).played = complete;
      if (complete > 0) rec->run(run_index).play_time = t;
      rec->step().played += played_bytes;
      rec->step().dropped_client += leftover;
    }
  }
}

Time Client::next_playout_event(Time now) const {
  Time frame_time;
  if (mode_ == PlayoutMode::ArrivalPlusOffset) {
    frame_time = now - offset_ - stall_shift_;
  } else {
    if (timer_base_ == kNever) return kNever;
    frame_time = timer_frame_ + (now - timer_base_ - stall_shift_);
  }
  // Runs before the cursor are strictly in the past; the first run at or
  // after frame_time is the next one play_frame() will find due.
  const auto all = stream_->runs();
  const auto it = std::lower_bound(
      all.begin() + static_cast<std::ptrdiff_t>(play_cursor_), all.end(),
      frame_time,
      [](const SliceRun& run, Time ft) { return run.arrival < ft; });
  if (it == all.end()) return kNever;
  const Time playout =
      mode_ == PlayoutMode::ArrivalPlusOffset
          ? it->arrival + offset_ + stall_shift_
          : timer_base_ + stall_shift_ + (it->arrival - timer_frame_);
  return std::max(now, playout);
}

void Client::record_idle_steps(std::int64_t n) {
  RTS_EXPECTS(occupancy_ == 0);
  if (occupancy_hist_ == nullptr) return;
  occupancy_hist_->record(0, n);
  max_occupancy_->update(0);
}

void Client::settle_capacity(ScheduleRecorder* rec) {
  // Evict the newest delivered bytes until the post-playout occupancy fits.
  // Only this step's arrivals can be in excess: the previous step ended
  // within capacity.
  while (occupancy_ > capacity_ && !arrived_this_step_.empty()) {
    auto& [run_index, bytes] = arrived_this_step_.back();
    RunState& rs = runs_[run_index];
    const Bytes excess = occupancy_ - capacity_;
    const Bytes evict = std::min({excess, bytes, rs.stored});
    if (evict == 0) {
      // This piece's frame already played this step; nothing left to evict.
      arrived_this_step_.pop_back();
      continue;
    }
    rs.stored -= evict;
    rs.overflow_lost += evict;
    total_overflow_ += evict;
    if (overflow_bytes_ != nullptr) overflow_bytes_->add(evict);
    occupancy_ -= evict;
    bytes -= evict;
    if (rec != nullptr) rec->step().dropped_client += evict;
    if (bytes == 0) arrived_this_step_.pop_back();
  }
  RTS_ASSERT(occupancy_ <= capacity_);
  arrived_this_step_.clear();
}

void Client::add_link_loss(std::size_t run_index, Bytes bytes) {
  RTS_EXPECTS(run_index < runs_.size());
  RTS_EXPECTS(bytes > 0);
  runs_[run_index].link_lost += bytes;
}

void Client::finalize(SimReport& report) {
  RTS_EXPECTS(!finalized_);
  finalized_ = true;
  const auto runs = stream_->runs();
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    RunState& rs = runs_[i];
    const SliceRun& run = runs[i];
    // Anything still stored was never played (simulation truncated before
    // this run's playout step): report as residual.
    if (rs.stored > 0) {
      const std::int64_t whole = rs.stored / run.slice_size;
      report.residual.add(rs.stored, run.weight * static_cast<Weight>(whole),
                          whole);
      // Partial bytes of an unfinished slice belong to a slice counted
      // elsewhere only once fully accounted; treat the fraction as residual
      // bytes of a residual slice.
      if (rs.stored % run.slice_size != 0) report.residual.slices += 1;
      occupancy_ -= rs.stored;
      rs.stored = 0;
      continue;
    }
    const Bytes lost_bytes =
        rs.overflow_lost + rs.late_lost + rs.leftover_lost + rs.link_lost;
    if (lost_bytes == 0) continue;
    // Every transmitted byte was either played, lost at the client, or
    // erased in flight and written off; the server transmits whole slices in
    // the long run, so the combined loss always forms whole slices once the
    // link drains. Whole-slice counts go to each category by its own byte
    // total; the cross-category remainders (a slice split between, say, an
    // erased half and a late half) are charged to the deadline-miss bucket.
    RTS_ASSERT(lost_bytes % run.slice_size == 0);
    const std::int64_t lost_slices = lost_bytes / run.slice_size;
    const std::int64_t overflow_slices = rs.overflow_lost / run.slice_size;
    const std::int64_t link_slices = rs.link_lost / run.slice_size;
    const std::int64_t late_slices = lost_slices - overflow_slices - link_slices;
    RTS_ASSERT(late_slices >= 0);
    report.dropped_client_overflow.add(
        rs.overflow_lost, run.weight * static_cast<Weight>(overflow_slices),
        overflow_slices);
    report.lost_link.add(rs.link_lost,
                         run.weight * static_cast<Weight>(link_slices),
                         link_slices);
    report.dropped_client_late.add(
        rs.late_lost + rs.leftover_lost,
        run.weight * static_cast<Weight>(late_slices), late_slices);
  }
  report.stall_steps += stall_shift_;
}

}  // namespace rtsmooth
