// The communication link (paper Sect. 2, Fig. 1): lossless, FIFO, with a
// constant per-byte propagation delay P. Rate limiting happens at the
// *server* (Eq. (2)); the link merely delays what it is given.
//
// `BoundedJitterLink` is the extension discussed as an open problem in
// Sect. 6: per-step delay P + j(t) with 0 <= j(t) <= J, FIFO order
// preserved. The paper's analysis assumes J = 0; the jitter ablation bench
// measures how much extra client budget restores losslessness.
//
// Faulty channels (erasures, outage bursts, throttling — the rest of the
// Sect. 6 open problems) live in src/faults/. The base interface carries the
// feedback path they need: a link that loses a piece surfaces it as a `Nack`
// once the loss becomes knowable at the server, and the server's recovery
// path (core/generic_algorithm.h) decides whether a retransmission can still
// make the playout deadline. Lossless links never produce NACKs.

#pragma once

#include <memory>
#include <vector>

#include "core/server_buffer.h"
#include "core/types.h"
#include "obs/telemetry.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace rtsmooth {

/// Feedback-path report of a piece the link definitively lost. The lost copy
/// never reaches the client; `piece.retx_attempt` counts how many times this
/// data had already been retransmitted when it was lost.
struct Nack {
  SentPiece piece;
  Time sent_at = 0;  ///< step the lost copy entered the link
};

/// Abstract FIFO pipe. Bytes submitted at step t are delivered at
/// step >= t + min_delay(), in submission order. Lossy implementations may
/// silently drop pieces in flight; every dropped piece must eventually be
/// surfaced through collect_nacks() exactly once.
class Link {
 public:
  virtual ~Link() = default;
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Accepts the pieces sent at step t.
  virtual void submit(Time t, std::vector<SentPiece> pieces) = 0;

  /// All pieces delivered at step t. Steps must be polled in increasing
  /// order.
  virtual std::vector<SentPiece> deliver(Time t) = 0;

  /// Loss reports whose feedback reaches the server at step t (loss
  /// detection time plus the reverse-path delay). Polled once per step, in
  /// increasing order of t, like deliver(). Lossless links return nothing.
  virtual std::vector<Nack> collect_nacks(Time t) {
    (void)t;
    return {};
  }

  /// Nothing in flight — including losses whose NACK is still in the
  /// feedback pipe.
  virtual bool idle() const = 0;
  virtual Time min_delay() const = 0;

  /// Earliest step >= now at which this link could deliver pieces or
  /// surface NACKs, assuming nothing further is submitted; kNever if it can
  /// stay silent forever. Conservative (early) answers are allowed — the
  /// event engine just takes a live step and asks again — but claiming
  /// silence while activity is possible is not. The default assumes any
  /// non-idle link may act on the very next step, which is always safe.
  virtual Time next_activity(Time now) const {
    return idle() ? kNever : now + 1;
  }

  /// Advances link-internal clocks to step t without transferring data,
  /// with exactly the side effects polling deliver() once per step through
  /// t would have on an idle span (RNG draws, telemetry records). Only
  /// links whose state evolves with time rather than traffic — the
  /// Gilbert-Elliott loss chain — do anything here; decorators must forward
  /// to their inner link. The event engine calls this when absorbing a
  /// skipped quiescent span.
  virtual void advance_to(Time t) { (void)t; }

  /// Installs a telemetry handle. The base links record nothing (the
  /// simulator already traces deliveries); fault links override this to
  /// count erasures and loss runs. Decorators must forward to their inner
  /// link.
  virtual void set_telemetry(obs::Telemetry telemetry) { (void)telemetry; }

 protected:
  Link() = default;
};

/// Constant-delay link: the paper's model. Link delay of every byte is
/// exactly P, so R(t) = S(t - P).
///
/// In-flight batches sit in a ring sized P + 2 up front: at most one batch
/// is submitted per step and each lives exactly P steps, so the ring never
/// grows and submit/deliver never allocate. deliver() moves the stored
/// piece vector back out, which lets the simulator recycle one vector
/// through server -> link -> client indefinitely (DESIGN.md Sect. 12).
class FixedDelayLink final : public Link {
 public:
  explicit FixedDelayLink(Time propagation_delay);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  bool idle() const override { return in_flight_.empty(); }
  Time min_delay() const override { return p_; }
  /// Exact: the head batch's delivery step (batches are FIFO in time).
  Time next_activity(Time now) const override {
    (void)now;
    return in_flight_.empty() ? kNever : in_flight_.front().deliver_at;
  }

 private:
  struct Batch {
    Time deliver_at = 0;
    std::vector<SentPiece> pieces;
  };
  Time p_;
  RingBuffer<Batch> in_flight_;
};

/// Link with bounded random extra delay: each step's batch is delayed
/// P + j, j uniform on {0..J}, clamped so delivery times never reorder
/// (FIFO preserved, as a jitter-control algorithm would enforce [21]).
class BoundedJitterLink final : public Link {
 public:
  BoundedJitterLink(Time propagation_delay, Time max_jitter, Rng rng);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  bool idle() const override { return in_flight_.empty(); }
  Time min_delay() const override { return p_; }
  /// Exact: the FIFO clamp makes the head batch the earliest delivery.
  Time next_activity(Time now) const override {
    (void)now;
    return in_flight_.empty() ? kNever : in_flight_.front().deliver_at;
  }
  Time max_jitter() const { return j_; }

 private:
  struct Batch {
    Time deliver_at = 0;
    std::vector<SentPiece> pieces;
  };
  Time p_;
  Time j_;
  Rng rng_;
  Time last_delivery_ = -1;
  /// Ring sized P + J + 2: one submission per step, each in flight for at
  /// most P + J steps (plus the same-step submit-before-deliver overlap).
  RingBuffer<Batch> in_flight_;
};

}  // namespace rtsmooth
