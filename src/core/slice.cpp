#include "core/slice.h"

#include <algorithm>
#include <limits>
#include <map>

namespace rtsmooth {

Stream Stream::from_runs(std::vector<SliceRun> runs) {
  std::stable_sort(runs.begin(), runs.end(),
                   [](const SliceRun& a, const SliceRun& b) {
                     return a.arrival < b.arrival;
                   });
  Stream s;
  std::map<Time, Bytes> frame_bytes;
  for (const SliceRun& r : runs) {
    RTS_EXPECTS(r.arrival >= 0);
    RTS_EXPECTS(r.slice_size >= 1);
    RTS_EXPECTS(r.count >= 1);
    RTS_EXPECTS(r.weight >= 0.0);
    s.total_bytes_ += r.total_bytes();
    s.total_weight_ += r.total_weight();
    s.total_slices_ += r.count;
    s.max_slice_size_ = std::max(s.max_slice_size_, r.slice_size);
    frame_bytes[r.arrival] += r.total_bytes();
  }
  for (const auto& [t, bytes] : frame_bytes) {
    s.max_frame_bytes_ = std::max(s.max_frame_bytes_, bytes);
  }
  s.runs_ = std::move(runs);
  return s;
}

double Stream::average_rate() const {
  if (runs_.empty()) return 0.0;
  const Time span = horizon() - first_arrival();
  RTS_ASSERT(span >= 1);
  return static_cast<double>(total_bytes_) / static_cast<double>(span);
}

std::span<const SliceRun> Stream::arrivals_at(Time t) const {
  const SliceRun probe{.arrival = t};
  const auto lo = std::lower_bound(
      runs_.begin(), runs_.end(), probe,
      [](const SliceRun& a, const SliceRun& b) { return a.arrival < b.arrival; });
  auto hi = lo;
  while (hi != runs_.end() && hi->arrival == t) ++hi;
  return {lo, hi};
}

ArrivalBatch ArrivalCursor::step(Time t) {
  RTS_EXPECTS(t >= last_t_);
  last_t_ = t;
  const auto all = stream_->runs();
  while (next_ < all.size() && all[next_].arrival < t) ++next_;
  std::size_t end = next_;
  while (end < all.size() && all[end].arrival == t) ++end;
  const ArrivalBatch result{.runs = all.subspan(next_, end - next_),
                            .first_index = next_};
  next_ = end;
  return result;
}

}  // namespace rtsmooth
