#include "core/schedule.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth {

void ScheduleRecorder::begin_step(Time t) {
  if (level_ == Level::RunsAndSteps) {
    steps_.push_back(StepSets{.t = t});
  } else {
    scratch_ = StepSets{.t = t};
  }
}

StepSets& ScheduleRecorder::step() {
  if (level_ == Level::RunsAndSteps) {
    RTS_EXPECTS(!steps_.empty());
    return steps_.back();
  }
  return scratch_;
}

RunOutcome& ScheduleRecorder::run(std::size_t run_index) {
  RTS_EXPECTS(run_index < runs_.size());
  return runs_[run_index];
}

const RunOutcome& ScheduleRecorder::run(std::size_t run_index) const {
  RTS_EXPECTS(run_index < runs_.size());
  return runs_[run_index];
}

void ScheduleRecorder::note_send(std::size_t run_index, Time t, Bytes bytes) {
  RTS_EXPECTS(bytes > 0);
  RunOutcome& out = run(run_index);
  if (out.first_send == kNever) out.first_send = t;
  out.last_send = (out.last_send == kNever) ? t : std::max(out.last_send, t);
  step().sent += bytes;
}

void ScheduleRecorder::note_receive(std::size_t run_index, Time t,
                                    Bytes bytes) {
  RTS_EXPECTS(bytes > 0);
  RunOutcome& out = run(run_index);
  if (out.first_receive == kNever) out.first_receive = t;
  out.last_receive =
      (out.last_receive == kNever) ? t : std::max(out.last_receive, t);
  step().delivered += bytes;
}

}  // namespace rtsmooth
