// Proactive threshold policy — the paper's closing open problem (Sect. 6)
// asks about algorithms "more pro-active" than Greedy, which only ever drops
// on overflow. This policy early-drops cheap data before the buffer fills:
//
//   * every step, if occupancy exceeds `watermark * B`, slices with byte
//     value at most `value_floor` are shed (cheapest first) down to the
//     watermark;
//   * on a real overflow it behaves exactly like Greedy.
//
// The intuition: when the buffer is nearly full of low-value B-frame data, a
// burst of valuable I-frame bytes will push out... itself partially, because
// the overflow drop happens while some cheap bytes are already in the FIFO
// head region being transmitted. Shedding early keeps headroom for bursts.
// The ablation bench abl_proactive quantifies whether this ever beats plain
// Greedy on MPEG-like traffic.

#pragma once

#include "core/drop_policy.h"

namespace rtsmooth {

struct ProactiveConfig {
  double watermark = 0.75;   ///< early-drop above this fraction of B
  double value_floor = 2.0;  ///< only byte values <= this may be early-dropped
};

class ProactiveThresholdPolicy final : public DropPolicy {
 public:
  explicit ProactiveThresholdPolicy(ProactiveConfig config);

  DropResult shed(ServerBuffer& buf, Bytes target) override;
  DropResult early_drop(ServerBuffer& buf, Bytes bound, Time now) override;
  std::string_view name() const override { return "proactive"; }
  std::unique_ptr<DropPolicy> clone() const override;

  const ProactiveConfig& config() const { return config_; }

 private:
  ProactiveConfig config_;
};

}  // namespace rtsmooth
