#include "policies/head_drop.h"

#include "policies/shed_algorithms.h"

namespace rtsmooth {

DropResult HeadDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  return shed::head_shed(buf, target);
}

std::unique_ptr<DropPolicy> HeadDropPolicy::clone() const {
  return std::make_unique<HeadDropPolicy>();
}

}  // namespace rtsmooth
