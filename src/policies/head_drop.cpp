#include "policies/head_drop.h"

#include "util/assert.h"

namespace rtsmooth {

DropResult HeadDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  DropResult total;
  while (buf.occupancy() > target) {
    bool dropped = false;
    for (std::size_t i = 0; i < buf.chunk_count() && !dropped; ++i) {
      const std::int64_t can = buf.droppable_slices(i);
      if (can <= 0) continue;  // head slice in transmission
      const Bytes excess = buf.occupancy() - target;
      const Bytes slice = buf.chunk(i).run->slice_size;
      const std::int64_t need = (excess + slice - 1) / slice;
      const DropResult freed = drop_clamped(buf, i, std::min(need, can));
      total.bytes += freed.bytes;
      total.weight += freed.weight;
      total.slices += freed.slices;
      dropped = freed.slices > 0;
    }
    RTS_ASSERT(dropped);
  }
  return total;
}

std::unique_ptr<DropPolicy> HeadDropPolicy::clone() const {
  return std::make_unique<HeadDropPolicy>();
}

}  // namespace rtsmooth
