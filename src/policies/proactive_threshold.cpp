#include "policies/proactive_threshold.h"

#include <cmath>

#include "policies/greedy_drop.h"
#include "util/assert.h"

namespace rtsmooth {

ProactiveThresholdPolicy::ProactiveThresholdPolicy(ProactiveConfig config)
    : config_(config) {
  RTS_EXPECTS(config.watermark > 0.0 && config.watermark <= 1.0);
  RTS_EXPECTS(config.value_floor >= 0.0);
}

DropResult ProactiveThresholdPolicy::shed(ServerBuffer& buf, Bytes target) {
  return greedy_shed(buf, target);
}

DropResult ProactiveThresholdPolicy::early_drop(ServerBuffer& buf, Bytes bound,
                                                Time /*now*/) {
  const auto threshold = static_cast<Bytes>(
      std::floor(config_.watermark * static_cast<double>(bound)));
  if (buf.occupancy() <= threshold) return {};
  return greedy_shed(buf, threshold, config_.value_floor);
}

std::unique_ptr<DropPolicy> ProactiveThresholdPolicy::clone() const {
  return std::make_unique<ProactiveThresholdPolicy>(config_);
}

}  // namespace rtsmooth
