// The Greedy algorithm (paper Sect. 4.1): on overflow, discard the slices
// with the lowest byte value w(s)/|s|, one by one in increasing byte-value
// order, until occupancy is back under the bound. Never preempts the slice
// in transmission (ServerBuffer enforces that).
//
// Theorem 4.1 proves this policy 4B/(B-2Lmax+2)-competitive; Theorem 4.7
// shows it can be forced to a ratio of 2 - eps.

#pragma once

#include "core/drop_policy.h"

namespace rtsmooth {

/// Sheds lowest-byte-value slices from `buf` until occupancy <= target,
/// considering only slices with byte value <= max_value. Ties are broken
/// towards newer chunks (the paper allows arbitrary tie-breaking; newest
/// keeps the policy deterministic). Returns what was freed. Shared between
/// GreedyDropPolicy and the proactive policy.
DropResult greedy_shed(ServerBuffer& buf, Bytes target,
                       double max_value = 1e300);

class GreedyDropPolicy final : public DropPolicy {
 public:
  GreedyDropPolicy() = default;

  DropResult shed(ServerBuffer& buf, Bytes target) override;
  std::string_view name() const override { return "greedy"; }
  std::unique_ptr<DropPolicy> clone() const override;
};

}  // namespace rtsmooth
