// Random-Drop: on overflow, victims are chosen uniformly at random among
// buffered chunks. A randomized baseline exercising the "arbitrary set of Z
// slices" freedom of the generic algorithm (Sect. 3.1.1) — Theorem 3.5 says
// the *count* lost is optimal no matter how badly we choose.

#pragma once

#include "core/drop_policy.h"
#include "util/rng.h"

namespace rtsmooth {

class RandomDropPolicy final : public DropPolicy {
 public:
  explicit RandomDropPolicy(std::uint64_t seed = 7);

  DropResult shed(ServerBuffer& buf, Bytes target) override;
  std::string_view name() const override { return "random"; }
  std::unique_ptr<DropPolicy> clone() const override;

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace rtsmooth
