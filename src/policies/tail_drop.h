// Tail-Drop (the paper's "FIFO algorithm", Sect. 5): on overflow at step t,
// slices of the most recent arrivals are discarded — intuitively, all
// overflow is shed from the tail of the server's buffer, so the incoming
// frame pays for its own burst.

#pragma once

#include "core/drop_policy.h"

namespace rtsmooth {

class TailDropPolicy final : public DropPolicy {
 public:
  TailDropPolicy() = default;

  DropResult shed(ServerBuffer& buf, Bytes target) override;
  std::string_view name() const override { return "tail-drop"; }
  std::unique_ptr<DropPolicy> clone() const override;
};

}  // namespace rtsmooth
