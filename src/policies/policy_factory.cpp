#include "policies/policy_factory.h"

#include <stdexcept>

#include "policies/greedy_drop.h"
#include "policies/head_drop.h"
#include "policies/proactive_threshold.h"
#include "policies/random_drop.h"
#include "policies/tail_drop.h"

namespace rtsmooth {

std::unique_ptr<DropPolicy> make_policy(std::string_view name,
                                        std::uint64_t seed) {
  if (name == "tail-drop") return std::make_unique<TailDropPolicy>();
  if (name == "greedy") return std::make_unique<GreedyDropPolicy>();
  if (name == "head-drop") return std::make_unique<HeadDropPolicy>();
  if (name == "random") return std::make_unique<RandomDropPolicy>(seed);
  if (name == "proactive") {
    return std::make_unique<ProactiveThresholdPolicy>(ProactiveConfig{});
  }
  std::string message = "unknown policy '" + std::string(name) + "'; known: ";
  bool first = true;
  for (const std::string& known : known_policies()) {
    if (!first) message += ", ";
    message += known;
    first = false;
  }
  throw std::invalid_argument(message);
}

std::vector<std::string> known_policies() {
  return {"tail-drop", "greedy", "head-drop", "random", "proactive"};
}

}  // namespace rtsmooth
