#include "policies/random_drop.h"

#include "util/assert.h"

namespace rtsmooth {

RandomDropPolicy::RandomDropPolicy(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

DropResult RandomDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  DropResult total;
  while (buf.occupancy() > target) {
    RTS_ASSERT(buf.chunk_count() > 0);
    // Pick a uniformly random chunk; retry if its slices are protected.
    // Victim granularity is a chunk-sized lump (dropping truly one slice at
    // a time would make unit-slice overflows quadratic).
    const auto i = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(buf.chunk_count()) - 1));
    const std::int64_t can = buf.droppable_slices(i);
    if (can <= 0) continue;
    const Bytes excess = buf.occupancy() - target;
    const Bytes slice = buf.chunk(i).run->slice_size;
    const std::int64_t need = (excess + slice - 1) / slice;
    const DropResult freed = drop_clamped(buf, i, std::min(need, can));
    total.bytes += freed.bytes;
    total.weight += freed.weight;
    total.slices += freed.slices;
  }
  return total;
}

std::unique_ptr<DropPolicy> RandomDropPolicy::clone() const {
  return std::make_unique<RandomDropPolicy>(seed_);
}

}  // namespace rtsmooth
