#include "policies/random_drop.h"

#include "policies/shed_algorithms.h"

namespace rtsmooth {

RandomDropPolicy::RandomDropPolicy(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

DropResult RandomDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  return shed::random_shed(buf, target, rng_);
}

std::unique_ptr<DropPolicy> RandomDropPolicy::clone() const {
  return std::make_unique<RandomDropPolicy>(seed_);
}

}  // namespace rtsmooth
