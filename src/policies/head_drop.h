// Head-Drop: on overflow, discard the *oldest* droppable slices first
// ("drop-front"). Not studied in the paper; included as a baseline because
// for real-time traffic dropping the stalest data is a folk heuristic, and
// the ablation bench contrasts it with Tail-Drop and Greedy.

#pragma once

#include "core/drop_policy.h"

namespace rtsmooth {

class HeadDropPolicy final : public DropPolicy {
 public:
  HeadDropPolicy() = default;

  DropResult shed(ServerBuffer& buf, Bytes target) override;
  std::string_view name() const override { return "head-drop"; }
  std::unique_ptr<DropPolicy> clone() const override;
};

}  // namespace rtsmooth
