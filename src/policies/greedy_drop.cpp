#include "policies/greedy_drop.h"

#include "policies/shed_algorithms.h"
#include "util/assert.h"

namespace rtsmooth {

DropResult greedy_shed(ServerBuffer& buf, Bytes target, double max_value) {
  return shed::greedy_shed(buf, target, max_value);
}

DropResult GreedyDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  const DropResult freed = greedy_shed(buf, target);
  RTS_ENSURES(buf.occupancy() <= target);
  return freed;
}

std::unique_ptr<DropPolicy> GreedyDropPolicy::clone() const {
  return std::make_unique<GreedyDropPolicy>();
}

}  // namespace rtsmooth
