#include "policies/greedy_drop.h"

#include "util/assert.h"

namespace rtsmooth {

DropResult greedy_shed(ServerBuffer& buf, Bytes target, double max_value) {
  DropResult total;
  while (buf.occupancy() > target) {
    // Linear scan for the cheapest droppable chunk. Buffers hold at most a
    // few hundred chunks (runs, not slices), so this is not a hot spot; the
    // microbench micro_policies tracks it.
    std::size_t victim = buf.chunk_count();
    double victim_value = max_value;
    for (std::size_t i = 0; i < buf.chunk_count(); ++i) {
      if (buf.droppable_slices(i) <= 0) continue;
      const double v = buf.chunk(i).run->byte_value();
      // '<=' prefers later (newer) chunks on ties.
      if (v <= victim_value) {
        victim = i;
        victim_value = v;
      }
    }
    if (victim == buf.chunk_count()) break;  // nothing below max_value
    const Bytes excess = buf.occupancy() - target;
    const Bytes slice = buf.chunk(victim).run->slice_size;
    const std::int64_t need = (excess + slice - 1) / slice;
    const std::int64_t n = std::min(need, buf.droppable_slices(victim));
    RTS_ASSERT(n > 0);
    const DropResult freed = buf.drop_slices(victim, n);
    total.bytes += freed.bytes;
    total.weight += freed.weight;
    total.slices += freed.slices;
  }
  return total;
}

DropResult GreedyDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  const DropResult freed = greedy_shed(buf, target);
  RTS_ENSURES(buf.occupancy() <= target);
  return freed;
}

std::unique_ptr<DropPolicy> GreedyDropPolicy::clone() const {
  return std::make_unique<GreedyDropPolicy>();
}

}  // namespace rtsmooth
