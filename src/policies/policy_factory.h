// Name-based policy construction for examples, benches and CLI tools.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/drop_policy.h"

namespace rtsmooth {

/// Creates a policy by name: "tail-drop", "greedy", "head-drop", "random",
/// "proactive". Throws std::invalid_argument for unknown names; the message
/// lists every registered name (see known_policies()).
/// `seed` feeds randomized policies; deterministic ones ignore it.
std::unique_ptr<DropPolicy> make_policy(std::string_view name,
                                        std::uint64_t seed = 7);

/// All registered policy names, for CLI help, error messages and exhaustive
/// test sweeps.
std::vector<std::string> known_policies();

}  // namespace rtsmooth
