// Shed algorithms, templated over the buffer implementation.
//
// The DropPolicy classes in this directory are thin wrappers around these
// function templates. The split exists for the differential test harness
// (tests/reference_core.h): the reference oracle runs the *same* shedding
// logic against its deque-based ReferenceServerBuffer, so an equivalence
// failure between the optimized and reference cores can only come from the
// data structures under test, never from a second copy of policy logic
// drifting out of sync.
//
// `Buffer` must provide the ServerBuffer query/mutation surface used by
// policies: occupancy(), chunk_count(), chunk(i) (returning a Chunk with
// `run`, `slices`, `head_sent`), droppable_slices(i), and drop_slices(i, k).

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/server_buffer.h"
#include "core/types.h"
#include "util/assert.h"
#include "util/rng.h"

namespace rtsmooth::shed {

/// Drops up to `k` slices from chunk `i`, clamped to what is droppable.
template <class Buffer>
DropResult drop_clamped(Buffer& buf, std::size_t i, std::int64_t k) {
  const std::int64_t can = buf.droppable_slices(i);
  const std::int64_t n = std::min(k, can);
  if (n <= 0) return {};
  return buf.drop_slices(i, n);
}

/// Tail-drop: shed from the newest chunks first (classic push-out FIFO).
template <class Buffer>
DropResult tail_shed(Buffer& buf, Bytes target) {
  DropResult total;
  // Newest chunks first. Dropping can erase a chunk, so re-derive the index
  // from chunk_count() each round.
  while (buf.occupancy() > target) {
    RTS_ASSERT(buf.chunk_count() > 0);
    bool dropped = false;
    for (std::size_t i = buf.chunk_count(); i-- > 0 && !dropped;) {
      const std::int64_t can = buf.droppable_slices(i);
      if (can <= 0) continue;
      const Bytes excess = buf.occupancy() - target;
      const Bytes slice = buf.chunk(i).run->slice_size;
      const std::int64_t need = (excess + slice - 1) / slice;
      const DropResult freed = drop_clamped(buf, i, std::min(need, can));
      total.bytes += freed.bytes;
      total.weight += freed.weight;
      total.slices += freed.slices;
      dropped = freed.slices > 0;
    }
    RTS_ASSERT(dropped);  // the caller guarantees shedding is possible
  }
  return total;
}

/// Head-drop: shed from the oldest droppable chunks first.
template <class Buffer>
DropResult head_shed(Buffer& buf, Bytes target) {
  DropResult total;
  while (buf.occupancy() > target) {
    bool dropped = false;
    for (std::size_t i = 0; i < buf.chunk_count() && !dropped; ++i) {
      const std::int64_t can = buf.droppable_slices(i);
      if (can <= 0) continue;  // head slice in transmission
      const Bytes excess = buf.occupancy() - target;
      const Bytes slice = buf.chunk(i).run->slice_size;
      const std::int64_t need = (excess + slice - 1) / slice;
      const DropResult freed = drop_clamped(buf, i, std::min(need, can));
      total.bytes += freed.bytes;
      total.weight += freed.weight;
      total.slices += freed.slices;
      dropped = freed.slices > 0;
    }
    RTS_ASSERT(dropped);
  }
  return total;
}

/// Random-drop: shed uniformly random chunks until the target is met. The
/// victim sequence is a pure function of `rng`'s state, so reference and
/// optimized buffers fed the same seed pick the same victims.
template <class Buffer>
DropResult random_shed(Buffer& buf, Bytes target, Rng& rng) {
  DropResult total;
  while (buf.occupancy() > target) {
    RTS_ASSERT(buf.chunk_count() > 0);
    // Pick a uniformly random chunk; retry if its slices are protected.
    // Victim granularity is a chunk-sized lump (dropping truly one slice at
    // a time would make unit-slice overflows quadratic).
    const auto i = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(buf.chunk_count()) - 1));
    const std::int64_t can = buf.droppable_slices(i);
    if (can <= 0) continue;
    const Bytes excess = buf.occupancy() - target;
    const Bytes slice = buf.chunk(i).run->slice_size;
    const std::int64_t need = (excess + slice - 1) / slice;
    const DropResult freed = drop_clamped(buf, i, std::min(need, can));
    total.bytes += freed.bytes;
    total.weight += freed.weight;
    total.slices += freed.slices;
  }
  return total;
}

/// Greedy (weighted) shed: repeatedly drop from the chunk with the lowest
/// value per byte, skipping chunks at or above `max_value`. Single pass per
/// round over the chunk descriptors; see policies/greedy_drop.h for the
/// benefit-ordering rationale.
template <class Buffer>
DropResult greedy_shed(Buffer& buf, Bytes target,
                       double max_value = std::numeric_limits<double>::max()) {
  DropResult total;
  while (buf.occupancy() > target) {
    // Linear scan for the cheapest droppable chunk. Buffers hold at most a
    // few hundred chunks (runs, not slices), so this is not a hot spot; the
    // microbench micro_policies tracks it.
    const std::size_t chunk_count = buf.chunk_count();
    std::size_t victim = chunk_count;
    double victim_value = max_value;
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const Chunk& c = buf.chunk(i);
      const std::int64_t droppable =
          (i == 0 && c.head_sent > 0) ? c.slices - 1 : c.slices;
      if (droppable <= 0) continue;
      const double v = c.run->byte_value();
      // '<=' prefers later (newer) chunks on ties.
      if (v <= victim_value) {
        victim = i;
        victim_value = v;
      }
    }
    if (victim == chunk_count) break;  // nothing below max_value
    const Bytes excess = buf.occupancy() - target;
    const Bytes slice = buf.chunk(victim).run->slice_size;
    const std::int64_t need = (excess + slice - 1) / slice;
    const std::int64_t n = std::min(need, buf.droppable_slices(victim));
    RTS_ASSERT(n > 0);
    const DropResult freed = buf.drop_slices(victim, n);
    total.bytes += freed.bytes;
    total.weight += freed.weight;
    total.slices += freed.slices;
  }
  return total;
}

}  // namespace rtsmooth::shed
