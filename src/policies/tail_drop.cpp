#include "policies/tail_drop.h"

#include "policies/shed_algorithms.h"

namespace rtsmooth {

DropResult TailDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  return shed::tail_shed(buf, target);
}

std::unique_ptr<DropPolicy> TailDropPolicy::clone() const {
  return std::make_unique<TailDropPolicy>();
}

}  // namespace rtsmooth
