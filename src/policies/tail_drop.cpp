#include "policies/tail_drop.h"

#include "util/assert.h"

namespace rtsmooth {

DropResult TailDropPolicy::shed(ServerBuffer& buf, Bytes target) {
  DropResult total;
  // Newest chunks first. Dropping can erase a chunk, so re-derive the index
  // from chunk_count() each round.
  while (buf.occupancy() > target) {
    RTS_ASSERT(buf.chunk_count() > 0);
    bool dropped = false;
    for (std::size_t i = buf.chunk_count(); i-- > 0 && !dropped;) {
      const std::int64_t can = buf.droppable_slices(i);
      if (can <= 0) continue;
      const Bytes excess = buf.occupancy() - target;
      const Bytes slice = buf.chunk(i).run->slice_size;
      const std::int64_t need = (excess + slice - 1) / slice;
      const DropResult freed = drop_clamped(buf, i, std::min(need, can));
      total.bytes += freed.bytes;
      total.weight += freed.weight;
      total.slices += freed.slices;
      dropped = freed.slices > 0;
    }
    RTS_ASSERT(dropped);  // the caller guarantees shedding is possible
  }
  return total;
}

std::unique_ptr<DropPolicy> TailDropPolicy::clone() const {
  return std::make_unique<TailDropPolicy>();
}

}  // namespace rtsmooth
