#include "obs/prometheus.h"

#include <cctype>
#include <cstdint>

namespace rtsmooth::obs {
namespace {

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

void append_metric(std::string& out, std::string_view name,
                   std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_histogram(std::string& out, const std::string& name,
                      const Histogram& hist) {
  append_metric(out, name, "histogram");
  // Registry buckets are per-bin; the exposition wants cumulative counts.
  std::int64_t cumulative = 0;
  const std::vector<std::int64_t>& bounds = hist.bounds();
  const std::vector<std::int64_t>& counts = hist.counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    out += name;
    out += "_bucket{le=\"";
    append_i64(out, bounds[i]);
    out += "\"} ";
    append_i64(out, cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  append_i64(out, hist.count());
  out += '\n';
  out += name;
  out += "_sum ";
  append_i64(out, hist.sum());
  out += '\n';
  out += name;
  out += "_count ";
  append_i64(out, hist.count());
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "rtsmooth_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out += std::isalnum(uc) != 0 ? c : '_';
  }
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        out += "\\\"";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    const std::string metric = prometheus_name(name);
    append_metric(out, metric, "counter");
    out += metric;
    out += ' ';
    append_i64(out, counter.value());
    out += '\n';
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string metric = prometheus_name(name);
    append_metric(out, metric, "gauge");
    out += metric;
    out += ' ';
    append_i64(out, gauge.value());
    out += '\n';
  }
  for (const auto& [name, hist] : registry.histograms()) {
    append_histogram(out, prometheus_name(name), hist);
  }
  return out;
}

}  // namespace rtsmooth::obs
