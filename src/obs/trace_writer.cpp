#include "obs/trace_writer.h"

#include <stdexcept>

namespace rtsmooth::obs {

TraceWriter::TraceWriter(const std::string& path)
    : file_(path, std::ios::trunc), out_(&file_) {
  if (!file_.is_open()) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
}

TraceWriter::TraceWriter(std::ostream& out) : out_(&out) {}

void TraceWriter::write(const Json& event) {
  event.write(*out_);
  *out_ << '\n';
  ++events_;
}

}  // namespace rtsmooth::obs
