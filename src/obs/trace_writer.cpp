#include "obs/trace_writer.h"

#include <stdexcept>

namespace rtsmooth::obs {

TraceWriter::TraceWriter(const std::string& path)
    : file_(path, std::ios::trunc), out_(&file_), path_(path) {
  if (!file_.is_open()) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
}

TraceWriter::TraceWriter(std::ostream& out) : out_(&out) {}

void TraceWriter::write(const Json& event) {
  event.write(*out_);
  *out_ << '\n';
  if (out_->fail()) {
    throw std::runtime_error(
        path_.empty() ? "TraceWriter: stream write failed"
                      : "TraceWriter: write failed for " + path_);
  }
  ++events_;
}

}  // namespace rtsmooth::obs
