#include "obs/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace rtsmooth::obs {

std::string BurnBudget::validate() const {
  if (name.empty()) return "budget name must be non-empty";
  if (bad.empty()) return "budget '" + name + "': bad counter list is empty";
  if (total.empty()) {
    return "budget '" + name + "': total counter list is empty";
  }
  if (!(budget > 0.0) || budget > 1.0) {
    return "budget '" + name + "': budget fraction must be in (0, 1]";
  }
  if (!(threshold > 0.0)) {
    return "budget '" + name + "': threshold must be positive";
  }
  return {};
}

std::string TimelineConfig::validate() const {
  if (slot_steps < 0) return "slot_steps must be >= 0";
  if (!enabled()) return {};  // disabled: nothing else matters
  if (capacity == 0) return "capacity must be >= 1";
  if (short_slots == 0) return "short_slots must be >= 1";
  if (long_slots < short_slots) return "long_slots must be >= short_slots";
  if (capacity < long_slots) {
    return "capacity must be >= long_slots (the long burn window must fit "
           "in the ring)";
  }
  for (const BurnBudget& b : budgets) {
    if (const std::string problem = b.validate(); !problem.empty()) {
      return problem;
    }
  }
  return {};
}

Timeline::Timeline(TimelineConfig config) : config_(std::move(config)) {
  if (const std::string problem = config_.validate(); !problem.empty()) {
    throw std::invalid_argument("TimelineConfig: " + problem);
  }
  burn_.reserve(config_.budgets.size());
  for (const BurnBudget& b : config_.budgets) {
    burn_.push_back(BurnStatus{.budget = &b});
  }
}

void Timeline::evict_oldest() {
  // The oldest slot's deltas fold into each metric's base, preserving
  // base + sum(deltas) == total while the ring stays at capacity.
  slot_end_steps_.erase(slot_end_steps_.begin());
  for (auto& [name, s] : counters_) {
    s.base += s.deltas.front();
    s.deltas.erase(s.deltas.begin());
  }
  for (auto& [name, s] : gauges_) {
    s.values.erase(s.values.begin());
  }
  for (auto& [name, s] : histograms_) {
    const std::vector<std::int64_t>& front = s.bucket_deltas.front();
    for (std::size_t i = 0; i < front.size(); ++i) s.base_counts[i] += front[i];
    s.base_count += s.count_deltas.front();
    s.base_sum += s.sum_deltas.front();
    s.bucket_deltas.erase(s.bucket_deltas.begin());
    s.count_deltas.erase(s.count_deltas.begin());
    s.sum_deltas.erase(s.sum_deltas.begin());
  }
  ++evicted_;
}

const std::vector<BurnStatus>& Timeline::sample(std::int64_t t,
                                                const Registry& registry) {
  // A sample that does not advance past the last slot's end step (the
  // daemon's terminal sample can land on the same step as the last cadence
  // sample) merges into that slot, keeping slot_end_steps strictly rising.
  const bool merge =
      !slot_end_steps_.empty() && t <= slot_end_steps_.back();
  if (!merge) {
    if (slot_end_steps_.size() == config_.capacity) evict_oldest();
    slot_end_steps_.push_back(t);
  }
  // Slots every metric column must already cover before this sample's slot.
  const std::size_t held = slot_end_steps_.size() - 1;

  for (const auto& [name, counter] : registry.counters()) {
    CounterSeries& s = counters_[name];
    if (s.deltas.size() < held) {
      // Metric appeared mid-run: zero-fill the history it missed.
      s.deltas.resize(held, 0);
    }
    const std::int64_t delta = counter.value() - s.prev;
    if (s.deltas.size() == held) {
      s.deltas.push_back(delta);
    } else {
      s.deltas.back() += delta;
    }
    s.prev = counter.value();
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    GaugeSeries& s = gauges_[name];
    if (s.values.size() < held) {
      // A high-watermark gauge that did not exist earlier backfills with
      // its current value — monotone by construction either way.
      s.values.resize(held, gauge.value());
    }
    if (s.values.size() == held) {
      s.values.push_back(gauge.value());
    } else {
      s.values.back() = gauge.value();
    }
  }
  for (const auto& [name, hist] : registry.histograms()) {
    HistogramSeries& s = histograms_[name];
    const std::vector<std::int64_t>& counts = hist.counts();
    if (s.bounds.empty() && !hist.bounds().empty()) s.bounds = hist.bounds();
    if (s.prev_counts.empty()) s.prev_counts.assign(counts.size(), 0);
    if (s.base_counts.empty()) s.base_counts.assign(counts.size(), 0);
    if (s.count_deltas.size() < held) {
      s.bucket_deltas.resize(
          held, std::vector<std::int64_t>(counts.size(), 0));
      s.count_deltas.resize(held, 0);
      s.sum_deltas.resize(held, 0);
    }
    if (s.count_deltas.size() == held) {
      std::vector<std::int64_t> delta(counts.size());
      for (std::size_t i = 0; i < counts.size(); ++i) {
        delta[i] = counts[i] - s.prev_counts[i];
      }
      s.bucket_deltas.push_back(std::move(delta));
      s.count_deltas.push_back(hist.count() - s.prev_count);
      s.sum_deltas.push_back(hist.sum() - s.prev_sum);
    } else {
      std::vector<std::int64_t>& row = s.bucket_deltas.back();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        row[i] += counts[i] - s.prev_counts[i];
      }
      s.count_deltas.back() += hist.count() - s.prev_count;
      s.sum_deltas.back() += hist.sum() - s.prev_sum;
    }
    s.prev_counts = counts;
    s.prev_count = hist.count();
    s.prev_sum = hist.sum();
  }

  recompute_burn();
  return burn_;
}

std::int64_t Timeline::window_sum(const std::vector<std::string>& names,
                                  std::size_t window) const {
  std::int64_t sum = 0;
  for (const std::string& name : names) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) continue;  // absent counters contribute 0
    const std::vector<std::int64_t>& deltas = it->second.deltas;
    const std::size_t n = std::min(window, deltas.size());
    for (std::size_t i = deltas.size() - n; i < deltas.size(); ++i) {
      sum += deltas[i];
    }
  }
  return sum;
}

void Timeline::recompute_burn() {
  for (BurnStatus& status : burn_) {
    const BurnBudget& b = *status.budget;
    const auto burn_over = [&](std::size_t window) {
      const std::int64_t total = window_sum(b.total, window);
      if (total <= 0) return 0.0;
      const std::int64_t bad = window_sum(b.bad, window);
      const double fraction =
          static_cast<double>(bad) / static_cast<double>(total);
      return fraction / b.budget;
    };
    status.short_burn = burn_over(config_.short_slots);
    status.long_burn = burn_over(config_.long_slots);
    status.firing = status.short_burn >= b.threshold &&
                    status.long_burn >= b.threshold;
    if (status.firing) ++status.alerts;
  }
}

Json Timeline::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "rtsmooth-series-v1";
  doc["slot_steps"] = config_.slot_steps;
  doc["capacity"] = static_cast<std::int64_t>(config_.capacity);
  doc["slots"] = static_cast<std::int64_t>(slot_end_steps_.size());
  doc["evicted"] = evicted_;
  Json ends = Json::array();
  for (const std::int64_t t : slot_end_steps_) ends.push_back(t);
  doc["slot_end_steps"] = std::move(ends);

  Json counters = Json::object();
  for (const auto& [name, s] : counters_) {
    Json c = Json::object();
    c["base"] = s.base;
    Json deltas = Json::array();
    for (const std::int64_t d : s.deltas) deltas.push_back(d);
    c["deltas"] = std::move(deltas);
    c["total"] = s.prev;  // base + sum(deltas) == total, by construction
    counters[name] = std::move(c);
  }
  doc["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const auto& [name, s] : gauges_) {
    Json values = Json::array();
    for (const std::int64_t v : s.values) values.push_back(v);
    gauges[name] = std::move(values);
  }
  doc["gauges"] = std::move(gauges);

  Json histograms = Json::object();
  for (const auto& [name, s] : histograms_) {
    Json h = Json::object();
    Json bounds = Json::array();
    for (const std::int64_t b : s.bounds) bounds.push_back(b);
    h["bounds"] = std::move(bounds);
    const auto series = [](std::int64_t base,
                           const std::vector<std::int64_t>& deltas,
                           std::int64_t total) {
      Json j = Json::object();
      j["base"] = base;
      Json d = Json::array();
      for (const std::int64_t v : deltas) d.push_back(v);
      j["deltas"] = std::move(d);
      j["total"] = total;
      return j;
    };
    h["count"] = series(s.base_count, s.count_deltas, s.prev_count);
    h["sum"] = series(s.base_sum, s.sum_deltas, s.prev_sum);
    Json bucket_base = Json::array();
    for (const std::int64_t v : s.base_counts) bucket_base.push_back(v);
    h["bucket_base"] = std::move(bucket_base);
    Json buckets = Json::array();
    for (const std::vector<std::int64_t>& slot : s.bucket_deltas) {
      Json row = Json::array();
      for (const std::int64_t v : slot) row.push_back(v);
      buckets.push_back(std::move(row));
    }
    h["buckets"] = std::move(buckets);
    histograms[name] = std::move(h);
  }
  doc["histograms"] = std::move(histograms);

  Json burn = Json::object();
  burn["short_slots"] = static_cast<std::int64_t>(config_.short_slots);
  burn["long_slots"] = static_cast<std::int64_t>(config_.long_slots);
  Json budgets = Json::array();
  for (const BurnStatus& status : burn_) {
    const BurnBudget& b = *status.budget;
    Json j = Json::object();
    j["name"] = b.name;
    j["budget"] = b.budget;
    j["threshold"] = b.threshold;
    Json bad = Json::array();
    for (const std::string& n : b.bad) bad.push_back(n);
    j["bad"] = std::move(bad);
    Json total = Json::array();
    for (const std::string& n : b.total) total.push_back(n);
    j["total"] = std::move(total);
    j["short_burn"] = status.short_burn;
    j["long_burn"] = status.long_burn;
    j["firing"] = status.firing;
    j["alerts"] = status.alerts;
    budgets.push_back(std::move(j));
  }
  burn["budgets"] = std::move(budgets);
  doc["burn"] = std::move(burn);
  return doc;
}

}  // namespace rtsmooth::obs
