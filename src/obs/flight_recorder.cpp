#include "obs/flight_recorder.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace rtsmooth::obs {

Json StepRecord::to_json() const {
  Json j = Json::object();
  j["t"] = t;
  j["arrived"] = arrived;
  j["sent"] = sent;
  j["delivered"] = delivered;
  j["played"] = played;
  j["dropped_server"] = dropped_server;
  j["dropped_client"] = dropped_client;
  j["retransmitted"] = retransmitted;
  j["server_occupancy"] = server_occupancy;
  j["client_occupancy"] = client_occupancy;
  j["link_idle"] = link_idle;
  j["stalled"] = stalled;
  return j;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.window == 0) {
    throw std::invalid_argument(
        "FlightRecorder: window must be >= 1 step — an incident with no "
        "flight data would explain nothing");
  }
  ring_.resize(config_.window);
}

void FlightRecorder::annotate(std::string_view key, Json value) {
  context_[key] = std::move(value);
}

void FlightRecorder::record(const StepRecord& record) {
  ring_[next_] = record;
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  ++steps_recorded_;
  if (config_.step_trigger && config_.step_trigger(record)) {
    Json trigger = Json::object();
    trigger["type"] = "step_trigger";
    trigger["t"] = record.t;
    capture(std::move(trigger));
  }
}

void FlightRecorder::on_violation(std::int64_t t, std::string_view kind,
                                  std::int64_t magnitude) {
  if (!config_.trigger_on_violation) return;
  Json trigger = Json::object();
  trigger["type"] = "violation";
  trigger["t"] = t;
  trigger["kind"] = kind;
  trigger["magnitude"] = magnitude;
  capture(std::move(trigger));
}

std::vector<StepRecord> FlightRecorder::window() const {
  std::vector<StepRecord> out;
  out.reserve(filled_);
  // Oldest record first: when the ring is full the next write slot holds it.
  const std::size_t start = filled_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < filled_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::capture(Json trigger) {
  ++triggers_total_;
  const std::int64_t t = trigger.find("t") != nullptr ? trigger.at("t").as_int()
                                                      : steps_recorded_;
  if (captured_any_ && t - last_capture_t_ < config_.cooldown) return;
  if (incidents_.size() >= config_.max_incidents) return;
  captured_any_ = true;
  last_capture_t_ = t;

  Json incident = Json::object();
  incident["schema"] = "rtsmooth-incident-v1";
  incident["incident"] = static_cast<std::int64_t>(incidents_.size());
  incident["trigger"] = std::move(trigger);
  incident["context"] = context_;
  incident["steps_recorded"] = steps_recorded_;
  incident["window_capacity"] = static_cast<std::int64_t>(config_.window);
  incident["truncated"] =
      steps_recorded_ > static_cast<std::int64_t>(config_.window);
  Json window_json = Json::array();
  for (const StepRecord& record : window()) {
    window_json.push_back(record.to_json());
  }
  incident["window"] = std::move(window_json);
  incidents_.push_back(std::move(incident));
}

void FlightRecorder::merge(const FlightRecorder& other) {
  for (const Json& incident : other.incidents_) {
    if (incidents_.size() >= config_.max_incidents) break;
    incidents_.push_back(incident);
  }
  steps_recorded_ += other.steps_recorded_;
  triggers_total_ += other.triggers_total_;
}

void FlightRecorder::write_incident(const Json& incident,
                                    const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("FlightRecorder: cannot open " + path);
  }
  incident.write(out);
  out << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("FlightRecorder: write failed for " + path);
  }
}

}  // namespace rtsmooth::obs
