#include "obs/stats_server.h"

#include "obs/json.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace rtsmooth::obs {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_timeout(int fd, int option, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// True when a dead process left `path` behind: connect() is refused.
/// A live server accepts (or at least queues) the probe.
bool socket_is_stale(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const sockaddr_un addr = make_addr(path);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  const bool refused = rc != 0 && errno == ECONNREFUSED;
  ::close(fd);
  return refused;
}

}  // namespace

StatsServer::StatsServer(StatsServerConfig config)
    : config_(std::move(config)) {
  sockaddr_un probe{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(probe.sun_path)) {
    throw std::invalid_argument("stats server: socket path must be 1.." +
                                std::to_string(sizeof(probe.sun_path) - 1) +
                                " bytes, got \"" + config_.socket_path + "\"");
  }
  if (config_.max_request_bytes < 16) {
    throw std::invalid_argument("stats server: max_request_bytes too small");
  }
  payload_.store(nullptr);
}

StatsServer::~StatsServer() { stop(); }

void StatsServer::start() {
  if (running()) return;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("stats server: socket");
  const sockaddr_un addr = make_addr(config_.socket_path);
  int rc = ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
  if (rc != 0 && errno == EADDRINUSE && socket_is_stale(config_.socket_path)) {
    ::unlink(config_.socket_path.c_str());
    rc = ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
  }
  if (rc != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("stats server: bind " + config_.socket_path);
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    throw_errno("stats server: listen " + config_.socket_path);
  }
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    throw_errno("stats server: self-pipe");
  }
  thread_ = std::thread([this] { serve_loop(); });
}

void StatsServer::stop() {
  if (!running()) return;
  const char wake = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &wake, 1);
  thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
}

void StatsServer::publish(std::string json, std::string prometheus,
                          std::string series) {
  auto payload = std::make_shared<const Payload>(
      Payload{std::move(json), std::move(prometheus), std::move(series)});
  payload_.store(std::move(payload));
}

StatsServer::Stats StatsServer::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.served_json = served_json_.load();
  s.served_metrics = served_metrics_.load();
  s.served_series = served_series_.load();
  s.served_health = served_health_.load();
  s.unavailable = unavailable_.load();
  s.bad_requests = bad_requests_.load();
  s.not_found = not_found_.load();
  s.io_errors = io_errors_.load();
  return s;
}

void StatsServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    accepted_.fetch_add(1);
    set_timeout(client, SO_RCVTIMEO, config_.io_timeout_ms);
    set_timeout(client, SO_SNDTIMEO, config_.io_timeout_ms);
    handle_client(client);
    ::close(client);
  }
}

void StatsServer::handle_client(int fd) {
  // Read until the header terminator; give up at max_request_bytes (400)
  // or on a timeout/disconnect (no response possible).
  std::string request;
  request.reserve(256);
  char buf[512];
  bool complete = false;
  while (!complete && request.size() < config_.max_request_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      io_errors_.fetch_add(1);
      return;
    }
    request.append(buf, static_cast<std::size_t>(n));
    complete = request.find("\r\n\r\n") != std::string::npos ||
               request.find("\n\n") != std::string::npos;
  }
  if (!complete) {
    bad_requests_.fetch_add(1);
    respond(fd, 400, "Bad Request", "text/plain",
            "request exceeds the header limit\n");
    return;
  }

  // "GET <path> ..." — the path is the second whitespace-delimited token.
  const std::string_view line =
      std::string_view(request).substr(0, request.find('\n'));
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos ||
      line.substr(0, method_end) != "GET") {
    bad_requests_.fetch_add(1);
    respond(fd, 400, "Bad Request", "text/plain", "only GET is supported\n");
    return;
  }
  std::string_view path = line.substr(method_end + 1);
  path = path.substr(0, path.find_first_of(" \r"));
  std::string_view query;
  if (const std::size_t q = path.find('?'); q != std::string_view::npos) {
    query = path.substr(q + 1);
    path = path.substr(0, q);
  }

  if (path == "/healthz") {
    served_health_.fetch_add(1);
    respond(fd, 200, "OK", "text/plain", "ok\n");
    return;
  }
  if (path != "/json" && path != "/metrics" && path != "/series") {
    not_found_.fetch_add(1);
    respond(fd, 404, "Not Found", "text/plain", "unknown path\n");
    return;
  }
  const std::shared_ptr<const Payload> payload = payload_.load();
  if (payload == nullptr) {
    unavailable_.fetch_add(1);
    respond(fd, 503, "Service Unavailable", "text/plain",
            "no snapshot published yet\n");
    return;
  }
  if (path == "/json") {
    serve_json(fd, *payload, query);
  } else if (path == "/series") {
    if (payload->series.empty()) {
      not_found_.fetch_add(1);
      respond(fd, 404, "Not Found", "text/plain",
              "timeline disabled in the publishing process\n");
      return;
    }
    served_series_.fetch_add(1);
    respond(fd, 200, "OK", "application/json", payload->series);
  } else {
    served_metrics_.fetch_add(1);
    respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            payload->prometheus);
  }
}

void StatsServer::serve_json(int fd, const Payload& payload,
                             std::string_view query) {
  if (query.empty()) {
    served_json_.fetch_add(1);
    respond(fd, 200, "OK", "application/json", payload.json);
    return;
  }
  constexpr std::string_view kSectionKey = "section=";
  if (query.substr(0, kSectionKey.size()) != kSectionKey) {
    bad_requests_.fetch_add(1);
    respond(fd, 400, "Bad Request", "text/plain",
            "unsupported query; try /json?section=<name>\n");
    return;
  }
  const std::string_view section = query.substr(kSectionKey.size());
  // The published snapshot is a frozen string; parsing it here keeps the
  // cost on the scraper's thread, never the publisher's.
  Json doc;
  try {
    doc = Json::parse(payload.json);
  } catch (const std::exception&) {
    bad_requests_.fetch_add(1);
    respond(fd, 400, "Bad Request", "text/plain",
            "published snapshot is not JSON\n");
    return;
  }
  if (const Json* sub = doc.find(section); sub != nullptr) {
    served_json_.fetch_add(1);
    respond(fd, 200, "OK", "application/json", sub->dump() + "\n");
    return;
  }
  // Mirror the known_policies() error style: name what was asked for and
  // list everything that would have worked.
  std::string body = "unknown section '";
  body += section;
  body += "'; known sections:";
  for (const std::string& key : doc.keys()) {
    body += ' ';
    body += key;
  }
  body += '\n';
  bad_requests_.fetch_add(1);
  respond(fd, 400, "Bad Request", "text/plain", body);
}

bool StatsServer::send_all(int fd, std::string_view text) {
  std::size_t off = 0;
  while (off < text.size()) {
    // MSG_NOSIGNAL: a scraper that disconnected mid-write yields EPIPE
    // instead of killing the process.
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    io_errors_.fetch_add(1);
    return false;
  }
  return true;
}

void StatsServer::respond(int fd, int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " ";
  head += reason;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head)) send_all(fd, body);
}

}  // namespace rtsmooth::obs
