// Minimal JSON value type for machine-readable output and forensics input:
// the JSONL run tracer, registry snapshots, the BENCH_*.json bench reports,
// and — since the flight-recorder work — parsing incident reports and JSONL
// step traces back in (Json::parse) so the Chrome-trace exporter and
// examples/trace_inspector can consume what the simulator emitted.
//
// Two properties matter more than generality:
//
//   * object keys keep *insertion order*, so a document built by the same
//     code path is byte-stable across runs, platforms and thread counts —
//     the golden-file tests and the threads=N == serial determinism
//     contract (DESIGN.md Sect. 9) compare dumped strings directly;
//   * numbers round-trip: integers print exactly, doubles print the
//     shortest decimal that parses back to the same value (to_chars), and
//     parse() keeps the int/double distinction the writer made.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace rtsmooth::obs {

/// One JSON value: null, bool, integer, double, string, array, or an
/// insertion-ordered object. Build with the constructors plus push_back()
/// (arrays) and operator[] (objects); serialize with dump() / write().
class Json {
 public:
  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T v)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}           // NOLINT
  Json(const char* s) : kind_(Kind::String), string_(s) {}      // NOLINT
  Json(std::string s)                                           // NOLINT
      : kind_(Kind::String), string_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::String), string_(s) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  /// Parses one JSON value (UTF-8, RFC 8259 subset: no duplicate-key
  /// detection). Throws std::runtime_error with the byte offset of the
  /// first error; trailing non-whitespace after the value is an error too.
  static Json parse(std::string_view text);

  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_double() const { return kind_ == Kind::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  // Read accessors for parsed documents. All throw std::runtime_error on a
  // kind mismatch — forensic tools prefer a message over an abort when fed
  // a file that doesn't match the schema they expect.
  bool as_bool() const;
  std::int64_t as_int() const;     ///< Int only (a double 3.0 is not an int)
  double as_double() const;        ///< Int or Double
  const std::string& as_string() const;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. The only non-throwing probe, for optional keys.
  const Json* find(std::string_view key) const;
  /// Object member access; throws std::runtime_error naming the missing key.
  const Json& at(std::string_view key) const;
  /// Array element access; throws std::runtime_error on out-of-range.
  const Json& at(std::size_t index) const;

  /// Object keys in insertion order (empty for non-objects).
  const std::vector<std::string>& keys() const { return keys_; }
  /// Array elements / object values in insertion order.
  const std::vector<Json>& items() const { return children_; }

  /// Array append. A default-constructed (null) value promotes to an array
  /// on first push, so `Json rows; rows.push_back(...)` works.
  void push_back(Json v);

  /// Object member access: inserts a null member on first use, preserving
  /// insertion order. A null value promotes to an object on first use.
  Json& operator[](std::string_view key);

  std::size_t size() const { return children_.size(); }

  /// Serializes compactly (no whitespace), keys in insertion order.
  std::string dump() const;
  void write(std::ostream& os) const;

  bool operator==(const Json&) const = default;

 private:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> children_;    ///< array elements / object values
  std::vector<std::string> keys_; ///< object keys, parallel to children_
};

}  // namespace rtsmooth::obs
