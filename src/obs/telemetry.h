// Telemetry layer: named counters, high-watermark gauges and fixed-bucket
// histograms in a Registry, plus RAII Span timers and a nullable Telemetry
// handle the instrumented code paths branch on.
//
// Contracts the rest of the repo relies on (DESIGN.md "Telemetry"):
//
//   * Null handle is free. Every instrumentation site guards on
//     `telemetry.enabled()` (or a cached pointer); with the default
//     Telemetry{} the added cost is one predictable branch — micro_obs
//     pins the end-to-end simulation within noise of the uninstrumented
//     baseline.
//   * Deterministic merge. Registry::merge() folds another registry in:
//     counters add, gauges take the max, histograms add bucket-by-bucket
//     (bounds must match — same instrumentation site, same spec). sweep()
//     gives every grid cell its own registry and merges them in submission
//     order, so `threads=N` snapshots are byte-identical to serial.
//   * Timers are quarantined. Span durations land in a separate timer
//     section of the registry; `to_json(/*include_timers=*/false)` is the
//     deterministic snapshot, timers are wall-clock noise by nature.
//
// Metric names are dotted strings owned by the instrumentation sites
// (e.g. "server.occupancy", "byte.sojourn_steps", "client.stall_run_length",
// "drop.burst_length", "link.loss_run"); the registry orders them
// lexicographically in snapshots.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace rtsmooth::obs {

class FlightRecorder;
class TraceWriter;

/// Monotone event count. Merge: sum.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  bool operator==(const Counter&) const = default;

 private:
  std::int64_t value_ = 0;
};

/// High-watermark gauge: update() keeps the maximum ever seen. Merge: max.
/// (A last-writer gauge would make merged snapshots depend on thread
/// scheduling; the paper's quantities of interest — peak occupancy, peak
/// backlog — are maxima anyway.)
class Gauge {
 public:
  void update(std::int64_t value) { value_ = std::max(value_, value); }
  std::int64_t value() const { return value_; }
  bool operator==(const Gauge&) const = default;

 private:
  std::int64_t value_ = std::numeric_limits<std::int64_t>::min();
};

/// Fixed inclusive upper bounds of a histogram's buckets, strictly
/// increasing. Values above the last bound land in an implicit overflow
/// bucket.
struct HistogramSpec {
  std::vector<std::int64_t> bounds;

  /// Bounds first, 2*first, 4*first, ... (`buckets` of them) — the default
  /// shape for durations and run lengths, where tails span decades.
  static HistogramSpec exponential(std::int64_t first, std::size_t buckets);
  /// Bounds width, 2*width, ..., buckets*width.
  static HistogramSpec linear(std::int64_t width, std::size_t buckets);

  bool operator==(const HistogramSpec&) const = default;
};

/// Fixed-bucket histogram over int64 samples with integer weights (a
/// byte-weighted sample is record(value, bytes)). Tracks exact count, sum,
/// min and max alongside the bucket counts, so bound checks (Lemma 3.2:
/// max sojourn <= ceil(B/R)) need no bucket interpolation.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  /// Weight 0 is a no-op; a negative weight throws std::invalid_argument
  /// (an un-count would silently corrupt every downstream sum).
  void record(std::int64_t value, std::int64_t weight = 1);

  std::int64_t count() const { return count_; }  ///< total recorded weight
  std::int64_t sum() const { return sum_; }      ///< sum of value * weight
  /// Smallest / largest recorded value; 0 when empty.
  std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  std::int64_t max() const { return count_ > 0 ? max_ : 0; }
  double mean() const;

  const std::vector<std::int64_t>& bounds() const { return spec_.bounds; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::int64_t>& counts() const { return counts_; }

  /// Adds `other` bucket-by-bucket. Bounds must match exactly — merged
  /// histograms come from the same instrumentation site; a mismatch throws
  /// std::invalid_argument.
  void merge(const Histogram& other);

  Json to_json() const;

  bool operator==(const Histogram&) const = default;

 private:
  HistogramSpec spec_;
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

/// Named metrics, ordered lexicographically in snapshots. Not thread-safe:
/// one registry per thread of execution (sweep() makes one per cell), merged
/// afterwards.
class Registry {
 public:
  /// Fetch-or-create. The spec only matters on first use; later lookups of
  /// the same name return the existing instrument unchanged.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, const HistogramSpec& spec);
  /// Span durations in microseconds (exponential 1us..~1e6us buckets), kept
  /// in the separate timer section — excluded from deterministic snapshots.
  Histogram& timer(std::string_view name);

  /// Deterministic fold: counters add, gauges max, histograms bucket-add,
  /// timers bucket-add. Call in a fixed order (submission order) for
  /// thread-count-independent results.
  void merge(const Registry& other);

  bool empty() const;

  /// Snapshot: {"counters":{...},"gauges":{...},"histograms":{...}} plus a
  /// "timers" section when included. The timer-free snapshot is the
  /// determinism unit of account.
  Json to_json(bool include_timers = true) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Histogram, std::less<>>& timers() const {
    return timers_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Histogram, std::less<>> timers_;
};

/// The nullable handle threaded through SimConfig / SweepSpec. Three raw
/// pointers, default all null; copying is free and the pointees must
/// outlive every component holding the handle.
struct Telemetry {
  Registry* registry = nullptr;
  TraceWriter* tracer = nullptr;
  /// Flight recorder (obs/flight_recorder.h): per-step ring + incident
  /// capture on invariant violations. Same null-handle contract.
  FlightRecorder* recorder = nullptr;

  bool enabled() const {
    return registry != nullptr || tracer != nullptr || recorder != nullptr;
  }
  explicit operator bool() const { return enabled(); }
};

/// RAII wall-clock timer: records the scope's duration (microseconds) into
/// `telemetry.registry->timer(name)` on destruction. With a null registry
/// the constructor takes no clock reading — a disabled Span is two pointer
/// stores.
class Span {
 public:
  Span(const Telemetry& telemetry, std::string_view name)
      : registry_(telemetry.registry), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Registry* registry_;
  std::string_view name_;  ///< sites pass string literals; Span never outlives them
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rtsmooth::obs
