#include "obs/telemetry.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/assert.h"

namespace rtsmooth::obs {

HistogramSpec HistogramSpec::exponential(std::int64_t first,
                                         std::size_t buckets) {
  RTS_EXPECTS(first >= 1);
  RTS_EXPECTS(buckets >= 1);
  HistogramSpec spec;
  spec.bounds.reserve(buckets);
  std::int64_t bound = first;
  for (std::size_t i = 0; i < buckets; ++i) {
    spec.bounds.push_back(bound);
    RTS_ASSERT(bound <= std::numeric_limits<std::int64_t>::max() / 2);
    bound *= 2;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(std::int64_t width, std::size_t buckets) {
  RTS_EXPECTS(width >= 1);
  RTS_EXPECTS(buckets >= 1);
  HistogramSpec spec;
  spec.bounds.reserve(buckets);
  for (std::size_t i = 1; i <= buckets; ++i) {
    spec.bounds.push_back(width * static_cast<std::int64_t>(i));
  }
  return spec;
}

Histogram::Histogram(HistogramSpec spec)
    : spec_(std::move(spec)), counts_(spec_.bounds.size() + 1, 0) {
  RTS_EXPECTS(!spec_.bounds.empty());
  for (std::size_t i = 1; i < spec_.bounds.size(); ++i) {
    RTS_EXPECTS(spec_.bounds[i - 1] < spec_.bounds[i]);
  }
}

void Histogram::record(std::int64_t value, std::int64_t weight) {
  if (weight < 0) {
    throw std::invalid_argument("Histogram: negative weight " +
                                std::to_string(weight));
  }
  if (weight == 0) return;
  const auto it =
      std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), value);
  const auto bucket =
      static_cast<std::size_t>(it - spec_.bounds.begin());  // last = overflow
  counts_[bucket] += weight;
  count_ += weight;
  sum_ += value * weight;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                    : 0.0;
}

void Histogram::merge(const Histogram& other) {
  if (spec_.bounds != other.spec_.bounds) {
    // Mismatched bucket layouts mean different instrumentation sites were
    // filed under one name — adding their buckets would fabricate data.
    throw std::invalid_argument(
        "Histogram: merge of mismatched bucket specs");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["min"] = min();
  j["max"] = max();
  Json bounds = Json::array();
  for (const std::int64_t b : spec_.bounds) bounds.push_back(b);
  j["bounds"] = std::move(bounds);
  Json counts = Json::array();
  for (const std::int64_t c : counts_) counts.push_back(c);
  j["counts"] = std::move(counts);
  return j;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const HistogramSpec& spec) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(spec)).first->second;
}

Histogram& Registry::timer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  // 1us .. ~1e6us (20 doublings) covers a cache hit through a minute-long
  // sweep cell.
  return timers_
      .emplace(std::string(name), Histogram(HistogramSpec::exponential(1, 20)))
      .first->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, counter] : other.counters_) {
    this->counter(name).add(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    this->gauge(name).update(gauge.value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
  for (const auto& [name, hist] : other.timers_) {
    const auto it = timers_.find(name);
    if (it == timers_.end()) {
      timers_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

bool Registry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         timers_.empty();
}

Json Registry::to_json(bool include_timers) const {
  Json j = Json::object();
  Json& counters = (j["counters"] = Json::object());
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter.value();
  }
  Json& gauges = (j["gauges"] = Json::object());
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge.value();
  Json& histograms = (j["histograms"] = Json::object());
  for (const auto& [name, hist] : histograms_) {
    histograms[name] = hist.to_json();
  }
  if (include_timers) {
    Json& timers = (j["timers"] = Json::object());
    for (const auto& [name, hist] : timers_) timers[name] = hist.to_json();
  }
  return j;
}

Span::~Span() {
  if (registry_ == nullptr) return;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  registry_->timer(name_).record(us);
}

}  // namespace rtsmooth::obs
