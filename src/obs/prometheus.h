// Prometheus text-exposition rendering of a telemetry Registry snapshot.
//
// The mapping is mechanical so the exposition stays in lockstep with the
// JSON snapshot (DESIGN.md Sect. 15):
//
//   * metric names are the registry's dotted names with every character
//     outside [a-zA-Z0-9_] rewritten to '_' and an "rtsmooth_" prefix
//     (e.g. "gateway.served_bytes" -> "rtsmooth_gateway_served_bytes");
//   * Counters render as `counter`, max-keeping Gauges as `gauge`,
//     Histograms as `histogram` with cumulative `_bucket{le="..."}`
//     series (each fixed bound plus `+Inf`) and exact `_sum` / `_count`;
//   * timers are excluded, mirroring `Registry::to_json(false)` — the
//     exposition of a merged registry is deterministic for any thread
//     count, the same unit of account as the JSON snapshot.

#pragma once

#include <string>
#include <string_view>

#include "obs/telemetry.h"

namespace rtsmooth::obs {

/// The "rtsmooth_"-prefixed exposition name for a dotted registry name.
std::string prometheus_name(std::string_view name);

/// Escapes a string for use inside a double-quoted exposition label value:
/// backslash -> \\, newline -> \n, double quote -> \" (text format 0.0.4).
/// Every other byte — including multi-byte UTF-8 sequences — passes
/// through untouched; label values, unlike metric names, are not
/// restricted to [a-zA-Z0-9_].
std::string prometheus_label_value(std::string_view value);

/// Renders the registry in Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` line per metric, lexicographic registry order,
/// timers excluded. An empty registry renders to an empty string.
std::string to_prometheus(const Registry& registry);

}  // namespace rtsmooth::obs
