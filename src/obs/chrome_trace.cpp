#include "obs/chrome_trace.h"

#include <istream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rtsmooth::obs {
namespace {

// Track (process) ids, fixed so exported traces line up across runs.
constexpr std::int64_t kServerPid = 1;
constexpr std::int64_t kLinkPid = 2;
constexpr std::int64_t kClientPid = 3;
constexpr std::int64_t kRecoveryPid = 4;

std::int64_t int_or_zero(const Json& event, std::string_view key) {
  const Json* value = event.find(key);
  return value != nullptr && value->is_int() ? value->as_int() : 0;
}

bool bool_or_false(const Json& event, std::string_view key) {
  const Json* value = event.find(key);
  return value != nullptr && value->is_bool() && value->as_bool();
}

Json event_base(std::string_view name, std::string_view ph, std::int64_t ts,
                std::int64_t pid) {
  Json e = Json::object();
  e["name"] = name;
  e["ph"] = ph;
  e["ts"] = ts;
  e["pid"] = pid;
  e["tid"] = 0;
  return e;
}

void add_process_metadata(Json& out) {
  constexpr std::pair<std::int64_t, const char*> kTracks[] = {
      {kServerPid, "server"},
      {kLinkPid, "link"},
      {kClientPid, "client"},
      {kRecoveryPid, "recovery"},
  };
  for (const auto& [pid, name] : kTracks) {
    Json e = event_base("process_name", "M", 0, pid);
    Json args = Json::object();
    args["name"] = name;
    e["args"] = std::move(args);
    out.push_back(std::move(e));
  }
}

void add_run_config_metadata(Json& out, const Json& config) {
  Json e = event_base("run_config", "M", 0, kServerPid);
  e["args"] = config;
  out.push_back(std::move(e));
}

void add_counter(Json& out, std::string_view name, std::int64_t ts,
                 std::int64_t pid, std::string_view arg_name,
                 std::int64_t value) {
  Json e = event_base(name, "C", ts, pid);
  Json args = Json::object();
  args[arg_name] = value;
  e["args"] = std::move(args);
  out.push_back(std::move(e));
}

/// The violation's kind names the component it indicts.
std::int64_t violation_pid(std::string_view kind) {
  if (kind.starts_with("server")) return kServerPid;
  if (kind.starts_with("client")) return kClientPid;
  return kRecoveryPid;
}

void add_violation_instant(Json& out, std::int64_t ts, std::string_view kind,
                           std::int64_t magnitude) {
  Json e = event_base(kind, "i", ts, violation_pid(kind));
  e["s"] = "t";  // thread-scoped marker on the indicted track
  Json args = Json::object();
  args["magnitude"] = magnitude;
  e["args"] = std::move(args);
  out.push_back(std::move(e));
}

/// Accumulates consecutive stalled steps into one "X" slice on the client
/// track — a rebuffering episode reads as one block, not a picket fence.
class StallSlicer {
 public:
  explicit StallSlicer(std::int64_t step_us) : step_us_(step_us) {}

  void step(Json& out, std::int64_t t, bool stalled) {
    if (stalled) {
      if (run_length_ == 0) run_start_ = t;
      ++run_length_;
      return;
    }
    flush(out);
  }

  void flush(Json& out) {
    if (run_length_ == 0) return;
    Json e = event_base("stall", "X", run_start_ * step_us_, kClientPid);
    e["dur"] = run_length_ * step_us_;
    Json args = Json::object();
    args["steps"] = run_length_;
    e["args"] = std::move(args);
    out.push_back(std::move(e));
    run_length_ = 0;
  }

 private:
  std::int64_t step_us_;
  std::int64_t run_start_ = 0;
  std::int64_t run_length_ = 0;
};

/// Emits the per-track events for one step of flight data; shared between
/// the JSONL path and the incident path, which carry the same fields.
void add_step(Json& out, const Json& step, std::int64_t step_us,
              StallSlicer& stalls) {
  const std::int64_t t = int_or_zero(step, "t");
  const std::int64_t ts = t * step_us;
  add_counter(out, "occupancy", ts, kServerPid, "bytes",
              int_or_zero(step, "server_occupancy"));
  add_counter(out, "sent", ts, kServerPid, "bytes", int_or_zero(step, "sent"));
  const std::int64_t dropped = int_or_zero(step, "dropped_server");
  if (dropped > 0) {
    Json e = event_base("drop", "i", ts, kServerPid);
    e["s"] = "t";
    Json args = Json::object();
    args["bytes"] = dropped;
    e["args"] = std::move(args);
    out.push_back(std::move(e));
  }
  add_counter(out, "delivered", ts, kLinkPid, "bytes",
              int_or_zero(step, "delivered"));
  if (step.find("link_idle") != nullptr) {
    add_counter(out, "idle", ts, kLinkPid, "idle",
                bool_or_false(step, "link_idle") ? 1 : 0);
  }
  add_counter(out, "occupancy", ts, kClientPid, "bytes",
              int_or_zero(step, "client_occupancy"));
  add_counter(out, "played", ts, kClientPid, "bytes",
              int_or_zero(step, "played"));
  add_counter(out, "retransmitted", ts, kRecoveryPid, "bytes",
              int_or_zero(step, "retransmitted"));
  stalls.step(out, t, bool_or_false(step, "stalled"));
}

std::string event_type(const Json& event) {
  const Json* type = event.find("type");
  return type != nullptr && type->is_string() ? type->as_string()
                                              : std::string();
}

}  // namespace

Json chrome_trace_from_events(const std::vector<Json>& events,
                              const ChromeTraceOptions& options) {
  Json out = Json::array();
  add_process_metadata(out);
  StallSlicer stalls(options.step_us);
  std::int64_t last_ts = 0;
  for (const Json& event : events) {
    const std::string type = event_type(event);
    if (type == "config") {
      add_run_config_metadata(out, event);
    } else if (type == "step") {
      add_step(out, event, options.step_us, stalls);
      last_ts = int_or_zero(event, "t") * options.step_us;
    } else if (type == "violation") {
      const Json* kind = event.find("kind");
      add_violation_instant(
          out, int_or_zero(event, "t") * options.step_us,
          kind != nullptr && kind->is_string() ? kind->as_string() : "unknown",
          int_or_zero(event, "magnitude"));
    } else if (type == "run") {
      Json e = event_base("run_summary", "M", last_ts, kServerPid);
      e["args"] = event;
      out.push_back(std::move(e));
    }
  }
  stalls.flush(out);
  return out;
}

Json chrome_trace_from_jsonl(std::istream& in,
                             const ChromeTraceOptions& options) {
  std::vector<Json> events;
  std::size_t line_number = 0;
  for (std::string line; std::getline(in, line);) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      events.push_back(Json::parse(line));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("chrome_trace: JSONL line " +
                               std::to_string(line_number) + ": " + e.what());
    }
  }
  return chrome_trace_from_events(events, options);
}

Json chrome_trace_from_incident(const Json& incident,
                                const ChromeTraceOptions& options) {
  const Json* schema = incident.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "rtsmooth-incident-v1") {
    throw std::runtime_error(
        "chrome_trace: not an rtsmooth-incident-v1 document");
  }
  Json out = Json::array();
  add_process_metadata(out);
  add_run_config_metadata(out, incident.at("context"));
  StallSlicer stalls(options.step_us);
  for (const Json& step : incident.at("window").items()) {
    add_step(out, step, options.step_us, stalls);
  }
  stalls.flush(out);
  const Json& trigger = incident.at("trigger");
  const Json* kind = trigger.find("kind");
  add_violation_instant(
      out, int_or_zero(trigger, "t") * options.step_us,
      kind != nullptr && kind->is_string() ? kind->as_string()
                                           : event_type(trigger),
      int_or_zero(trigger, "magnitude"));
  return out;
}

}  // namespace rtsmooth::obs
