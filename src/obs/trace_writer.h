// Structured event tracer: one JSON object per line (JSONL), flushed on
// close. The simulator emits `config` / `step` / `violation` / `run` events
// through this — a machine-readable superset of the CSV step trace
// (sim/step_trace.h) — and anything else holding a Telemetry handle may
// append its own event kinds.

#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "obs/json.h"

namespace rtsmooth::obs {

/// Not thread-safe: one writer per run, like the Registry.
class TraceWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error when
  /// the file cannot be opened — a silently empty trace would be worse.
  explicit TraceWriter(const std::string& path);
  /// Writes to a caller-owned stream (golden tests trace into a
  /// std::ostringstream). The stream must outlive the writer.
  explicit TraceWriter(std::ostream& out);

  /// Appends one event as a single line. Throws std::runtime_error (naming
  /// the path when one is known) if the underlying stream reports failure —
  /// a trace truncated by a full disk must not pass silently.
  void write(const Json& event);

  std::int64_t events() const { return events_; }

 private:
  std::ofstream file_;   ///< backing storage for the path constructor
  std::ostream* out_;    ///< the stream actually written to
  std::string path_;     ///< for error messages; empty for stream writers
  std::int64_t events_ = 0;
};

}  // namespace rtsmooth::obs
