// Live introspection endpoint: a unix-domain-socket HTTP server that
// publishes the owning process's latest snapshot without ever making the
// engine thread wait on a scraper.
//
// Publication contract (DESIGN.md Sect. 15):
//
//   * publish() swaps an immutable {JSON, Prometheus} document pair into
//     an atomic shared_ptr (epoch swap). The engine thread allocates the
//     strings off the per-step hot path (only at publish cadence), then
//     performs one pointer store; scrapers copy the pointer and read the
//     frozen strings lock-free. No scraper can block, slow, or tear a
//     publisher, and vice versa.
//   * The server owns one background thread: poll() over the listen
//     socket and a self-pipe, connections handled one at a time with
//     short socket timeouts (requests and responses are tiny).
//   * Routes: GET /json (application/json), GET /metrics (Prometheus
//     text exposition), GET /series (the rtsmooth-series-v1 timeline
//     document; 404 when the publisher runs with the timeline disabled),
//     GET /healthz. `/json?section=<name>` serves one top-level section
//     of the snapshot; an unknown section answers 400 listing the known
//     sections. Before the first publish(), /json, /metrics and /series
//     answer 503. A request with no header terminator within
//     max_request_bytes answers 400; unknown paths answer 404.
//     Responses use HTTP/1.0 + Connection: close, so `curl
//     --unix-socket PATH http://rtsmooth/json` works as-is.
//   * Stale socket takeover: if bind() finds the path in use, a probe
//     connect distinguishes a live server (ECONNREFUSED never happens —
//     start() throws) from a leftover socket file of a dead process
//     (connection refused — unlink and bind again).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace rtsmooth::obs {

struct StatsServerConfig {
  /// Filesystem path of the AF_UNIX listening socket. Required; must fit
  /// sockaddr_un (throws std::invalid_argument otherwise).
  std::string socket_path;
  /// Requests whose headers exceed this answer 400 (scrape requests are
  /// one line; anything bigger is a confused client).
  std::size_t max_request_bytes = 4096;
  /// listen(2) backlog.
  int backlog = 16;
  /// Per-connection socket read/write timeout in milliseconds — a stalled
  /// scraper can delay other scrapers at most this long and can never
  /// touch the publishing thread.
  int io_timeout_ms = 500;
};

class StatsServer {
 public:
  /// Validates the config; does not touch the filesystem until start().
  explicit StatsServer(StatsServerConfig config);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds, listens, and launches the serving thread. Throws
  /// std::runtime_error when the path is unusable or held by a live
  /// server. Idempotent while running.
  void start();

  /// Stops the serving thread and removes the socket file. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  const std::string& socket_path() const { return config_.socket_path; }

  /// Atomically replaces the served documents (see file comment). Safe to
  /// call before start() and from any single publisher thread. An empty
  /// `series` means the publisher has no timeline; /series answers 404.
  void publish(std::string json, std::string prometheus,
               std::string series = {});

  /// Endpoint-side tallies, readable from any thread.
  struct Stats {
    std::int64_t accepted = 0;      ///< connections accepted
    std::int64_t served_json = 0;   ///< 200s on /json (filtered or not)
    std::int64_t served_metrics = 0;///< 200s on /metrics
    std::int64_t served_series = 0; ///< 200s on /series
    std::int64_t served_health = 0; ///< 200s on /healthz
    std::int64_t unavailable = 0;   ///< 503s before the first publish
    std::int64_t bad_requests = 0;  ///< 400s (oversized / unparsable)
    std::int64_t not_found = 0;     ///< 404s
    std::int64_t io_errors = 0;     ///< disconnects and timeouts mid-exchange
  };
  Stats stats() const;

 private:
  struct Payload {
    std::string json;
    std::string prometheus;
    std::string series;  ///< empty when the publisher has no timeline
  };

  void serve_loop();
  void handle_client(int fd);
  void serve_json(int fd, const Payload& payload, std::string_view query);
  bool send_all(int fd, std::string_view text);
  void respond(int fd, int status, std::string_view reason,
               std::string_view content_type, std::string_view body);

  StatsServerConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes the poll loop
  std::thread thread_;

  std::atomic<std::shared_ptr<const Payload>> payload_;

  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> served_json_{0};
  std::atomic<std::int64_t> served_metrics_{0};
  std::atomic<std::int64_t> served_series_{0};
  std::atomic<std::int64_t> served_health_{0};
  std::atomic<std::int64_t> unavailable_{0};
  std::atomic<std::int64_t> bad_requests_{0};
  std::atomic<std::int64_t> not_found_{0};
  std::atomic<std::int64_t> io_errors_{0};
};

}  // namespace rtsmooth::obs
