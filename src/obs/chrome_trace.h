// Chrome-trace exporter: converts the simulator's machine-readable output —
// a JSONL run trace (obs/trace_writer.h) or an `rtsmooth-incident-v1`
// flight-recorder document — into the Trace Event Format JSON array that
// chrome://tracing and Perfetto open directly.
//
// Mapping (DESIGN.md Sect. 11): one process per component —
//
//   pid 1 "server"    occupancy + sent counters, "drop" instants, and the
//                     sojourn/occupancy invariant violations
//   pid 2 "link"      delivered counter and an idle(0/1) counter
//   pid 3 "client"    occupancy + played counters, "stall" duration slices
//                     (consecutive stalled steps become one "X" event), and
//                     the overflow/underflow violations
//   pid 4 "recovery"  retransmitted-bytes counter
//
// Simulated time has no wall-clock: one simulator step is rendered as
// `ChromeTraceOptions::step_us` trace microseconds (default 1000, so the
// Perfetto ruler reads "1 ms = 1 step"). Violations become thread-scoped
// instant events named after their kind. The `config` event (or incident
// context) lands in process_name metadata plus one "run_config" metadata
// event, so the viewer shows the run parameters alongside the tracks.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/json.h"

namespace rtsmooth::obs {

struct ChromeTraceOptions {
  /// Trace microseconds per simulator step.
  std::int64_t step_us = 1000;
};

/// Converts parsed JSONL events (`config` / `step` / `violation` / `run`
/// objects, in emission order) into a trace_event array. Unknown event
/// types are skipped; step events may omit keys added by later schema
/// revisions (absent numeric fields read as 0).
Json chrome_trace_from_events(const std::vector<Json>& events,
                              const ChromeTraceOptions& options = {});

/// Reads a JSONL stream (one JSON object per line, blank lines ignored) and
/// converts it. Throws std::runtime_error on a malformed line.
Json chrome_trace_from_jsonl(std::istream& in,
                             const ChromeTraceOptions& options = {});

/// Converts one `rtsmooth-incident-v1` document: the window becomes step
/// events, the trigger a violation/instant marker. Throws
/// std::runtime_error when `incident` does not carry the expected schema.
Json chrome_trace_from_incident(const Json& incident,
                                const ChromeTraceOptions& options = {});

}  // namespace rtsmooth::obs
