// In-daemon timeline: a fixed-capacity ring of periodic registry samples,
// delta-encoded, plus multi-window SLO burn-rate computation over named
// error budgets (DESIGN.md Sect. 16).
//
// The introspection plane (stats_server.h) exposes point-in-time snapshots;
// a scraper that misses a burst sees nothing. The timeline closes that gap
// *inside* the daemon: every `slot_steps` engine steps the sampler diffs
// the registry against the previous sample and appends one slot of
//
//   * counter deltas        (monotone, so a delta is the interval's traffic),
//   * gauge values          (high-watermark gauges — the running maximum),
//   * histogram bucket/count/sum deltas (the interval's distribution).
//
// When the ring is full the oldest slot folds into a per-metric `base`, so
// the invariant  base + sum(deltas) == total  holds at every instant and the
// emitted rtsmooth-series-v1 document is self-validating: the series always
// reconciles exactly against the terminal snapshot's registry section.
//
// Burn rates follow the multi-window SRE recipe: for each budget, the bad /
// total counter deltas are summed over a short and a long trailing window,
// fraction = bad/total, burn = fraction/budget, and the budget *fires* only
// when BOTH windows burn at >= threshold — the short window gives fast
// detection, the long window keeps one spike from paging. The daemon feeds
// each sample's BurnStatus to the Watchdog, which turns sustained burns
// into incidents (rate-limited like every other breach).
//
// Determinism: metric columns live in lexicographic maps, timers are
// excluded, and every stored quantity derives from registry integers — the
// dumped document is byte-identical across RTSMOOTH_THREADS, pinned like
// the /json payload.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/telemetry.h"

namespace rtsmooth::obs {

/// One SLO error budget tracked by the timeline. `bad` and `total` name
/// registry counters whose per-slot deltas are summed; the budget is the
/// fraction of `total` allowed to be `bad` (e.g. 0.01 = 1% of played bytes
/// may miss their deadline). Counters that do not exist (yet) contribute 0.
struct BurnBudget {
  std::string name;                ///< e.g. "deadline_miss"
  std::vector<std::string> bad;    ///< counter names, deltas summed
  std::vector<std::string> total;  ///< counter names, deltas summed
  double budget = 0.01;            ///< allowed bad/total fraction, (0, 1]
  double threshold = 1.0;          ///< fire when both windows burn >= this

  /// Empty string when valid, else what is wrong.
  std::string validate() const;
};

struct TimelineConfig {
  /// Sampling cadence in engine steps; 0 disables the timeline entirely
  /// (no ring, no sampler branch cost beyond one null check).
  std::int64_t slot_steps = 0;
  std::size_t capacity = 256;  ///< slots kept before eviction into base
  std::size_t short_slots = 6;   ///< short burn window (slots)
  std::size_t long_slots = 36;   ///< long burn window (slots, >= short)
  std::vector<BurnBudget> budgets;

  bool enabled() const { return slot_steps > 0; }
  /// Empty string when valid, else what is wrong.
  std::string validate() const;
};

/// Per-budget result of one sample: burn rates over both windows and
/// whether the budget is firing (both >= threshold).
struct BurnStatus {
  const BurnBudget* budget = nullptr;
  double short_burn = 0.0;
  double long_burn = 0.0;
  bool firing = false;
  std::int64_t alerts = 0;  ///< samples (ever) at which this budget fired
};

/// Rolling delta-encoded history of a Registry. Not thread-safe: owned and
/// sampled by the engine thread; scrapers see frozen dumps via the stats
/// server's epoch-swap publication, never this object.
class Timeline {
 public:
  /// Throws std::invalid_argument when the config does not validate.
  explicit Timeline(TimelineConfig config);

  const TimelineConfig& config() const { return config_; }

  /// Diffs `registry` against the previous sample and appends one slot
  /// ending at step `t` (evicting the oldest into base when full), then
  /// recomputes burn rates. Returns the per-budget status, one entry per
  /// configured budget, in configuration order.
  const std::vector<BurnStatus>& sample(std::int64_t t,
                                        const Registry& registry);

  std::size_t slots() const { return slot_end_steps_.size(); }
  std::int64_t evicted() const { return evicted_; }
  const std::vector<BurnStatus>& burn() const { return burn_; }

  /// The rtsmooth-series-v1 document (see DESIGN.md Sect. 16 for the full
  /// schema). Deterministic: lexicographic metric order, timers excluded.
  Json to_json() const;

 private:
  struct CounterSeries {
    std::int64_t prev = 0;  ///< registry value at the last sample
    std::int64_t base = 0;  ///< value accounted by evicted slots
    std::vector<std::int64_t> deltas;  ///< one per live slot
  };
  struct GaugeSeries {
    std::vector<std::int64_t> values;  ///< gauge value at each sample
  };
  struct HistogramSeries {
    std::vector<std::int64_t> bounds;
    std::vector<std::int64_t> prev_counts;  ///< per-bucket, at last sample
    std::int64_t prev_count = 0;
    std::int64_t prev_sum = 0;
    std::vector<std::int64_t> base_counts;  ///< evicted per-bucket weight
    std::int64_t base_count = 0;
    std::int64_t base_sum = 0;
    std::vector<std::vector<std::int64_t>> bucket_deltas;  ///< [slot][bucket]
    std::vector<std::int64_t> count_deltas;
    std::vector<std::int64_t> sum_deltas;
  };

  void evict_oldest();
  /// Sum of the last `window` slots' deltas for the named counters.
  std::int64_t window_sum(const std::vector<std::string>& names,
                          std::size_t window) const;
  void recompute_burn();

  TimelineConfig config_;
  std::vector<std::int64_t> slot_end_steps_;
  std::map<std::string, CounterSeries, std::less<>> counters_;
  std::map<std::string, GaugeSeries, std::less<>> gauges_;
  std::map<std::string, HistogramSeries, std::less<>> histograms_;
  std::vector<BurnStatus> burn_;
  std::int64_t evicted_ = 0;
};

}  // namespace rtsmooth::obs
