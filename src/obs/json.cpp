#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace rtsmooth::obs {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]
             << kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  RTS_ASSERT(ec == std::errc());
  std::string_view text(buf, static_cast<std::size_t>(end - buf));
  os << text;
  // Keep a double visibly a double ("3" would read back as an integer).
  if (text.find_first_of(".eE") == std::string_view::npos) os << ".0";
}

}  // namespace

void Json::push_back(Json v) {
  RTS_EXPECTS(kind_ == Kind::Array || kind_ == Kind::Null);
  kind_ = Kind::Array;
  children_.push_back(std::move(v));
}

Json& Json::operator[](std::string_view key) {
  RTS_EXPECTS(kind_ == Kind::Object || kind_ == Kind::Null);
  kind_ = Kind::Object;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return children_[i];
  }
  keys_.emplace_back(key);
  children_.emplace_back();
  return children_.back();
}

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null:
      os << "null";
      break;
    case Kind::Bool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::Int:
      os << int_;
      break;
    case Kind::Double:
      write_double(os, double_);
      break;
    case Kind::String:
      write_escaped(os, string_);
      break;
    case Kind::Array:
      os << '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << ',';
        children_[i].write(os);
      }
      os << ']';
      break;
    case Kind::Object:
      os << '{';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << ',';
        write_escaped(os, keys_[i]);
        os << ':';
        children_[i].write(os);
      }
      os << '}';
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return std::move(os).str();
}

}  // namespace rtsmooth::obs
