#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.h"

namespace rtsmooth::obs {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]
             << kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  RTS_ASSERT(ec == std::errc());
  std::string_view text(buf, static_cast<std::size_t>(end - buf));
  os << text;
  // Keep a double visibly a double ("3" would read back as an integer).
  if (text.find_first_of(".eE") == std::string_view::npos) os << ".0";
}

/// Recursive-descent parser over a string_view. Errors throw with the byte
/// offset, which is all a command-line forensics tool needs to point at the
/// broken spot of a one-line JSONL event.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[key] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_code_point(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_code_point(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [end, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && end == token.data() + token.size()) {
        return Json(value);
      }
      // Out-of-range integers degrade to double rather than failing.
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void accessor_mismatch(const char* wanted) {
  throw std::runtime_error(std::string("Json: value is not ") + wanted);
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) accessor_mismatch("a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::Int) accessor_mismatch("an integer");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) accessor_mismatch("a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) accessor_mismatch("a string");
  return string_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &children_[i];
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* member = find(key);
  if (member == nullptr) {
    throw std::runtime_error("Json: no member \"" + std::string(key) + "\"");
  }
  return *member;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::Array || index >= children_.size()) {
    throw std::runtime_error("Json: array index " + std::to_string(index) +
                             " out of range");
  }
  return children_[index];
}

void Json::push_back(Json v) {
  RTS_EXPECTS(kind_ == Kind::Array || kind_ == Kind::Null);
  kind_ = Kind::Array;
  children_.push_back(std::move(v));
}

Json& Json::operator[](std::string_view key) {
  RTS_EXPECTS(kind_ == Kind::Object || kind_ == Kind::Null);
  kind_ = Kind::Object;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return children_[i];
  }
  keys_.emplace_back(key);
  children_.emplace_back();
  return children_.back();
}

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null:
      os << "null";
      break;
    case Kind::Bool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::Int:
      os << int_;
      break;
    case Kind::Double:
      write_double(os, double_);
      break;
    case Kind::String:
      write_escaped(os, string_);
      break;
    case Kind::Array:
      os << '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << ',';
        children_[i].write(os);
      }
      os << ']';
      break;
    case Kind::Object:
      os << '{';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << ',';
        write_escaped(os, keys_[i]);
        os << ':';
        children_[i].write(os);
      }
      os << '}';
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return std::move(os).str();
}

}  // namespace rtsmooth::obs
