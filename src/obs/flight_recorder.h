// Flight recorder: a fixed-size ring of compact per-step records that turns
// a bare invariant-violation counter into a causal story. The simulator
// appends one StepRecord per step (occupancies, byte flows, link state, the
// step's drop decision); when a trigger fires — an InvariantMonitor
// violation, or a caller-supplied per-step predicate — the recorder freezes
// the last-N-step window together with the trigger event into a
// self-contained `rtsmooth-incident-v1` JSON document.
//
// Contracts (DESIGN.md Sect. 11):
//
//   * Null handle is free. The recorder rides the same nullable Telemetry
//     handle as the Registry and TraceWriter: with `telemetry.recorder ==
//     nullptr` the simulator's hot path pays one predictable branch, pinned
//     by bench/micro_obs.
//   * Incidents are deferred JSON, not files. Triggers snapshot into an
//     in-memory document (bounded by `max_incidents`; later triggers are
//     counted, not stored) and the owner writes them after the run — the
//     step loop never touches the filesystem.
//   * Deterministic merge. sweep() gives every grid cell its own recorder
//     (cloned from the shared one's config) and folds the incidents back in
//     submission order, so the merged incident list is byte-identical for
//     any thread count, like Registry snapshots.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace rtsmooth::obs {

/// One step of flight data. All byte quantities are this step's deltas
/// except the two occupancies, which are post-step state; `dropped_server`
/// is the step's active drop decision (Eq. (3) sheds plus deadline
/// write-offs), `link_idle` is the channel state after delivery.
struct StepRecord {
  std::int64_t t = 0;
  std::int64_t arrived = 0;
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t played = 0;
  std::int64_t dropped_server = 0;
  std::int64_t dropped_client = 0;
  std::int64_t retransmitted = 0;
  std::int64_t server_occupancy = 0;
  std::int64_t client_occupancy = 0;
  bool link_idle = true;
  bool stalled = false;

  bool operator==(const StepRecord&) const = default;

  Json to_json() const;
};

struct FlightRecorderConfig {
  /// Ring capacity: incidents carry at most this many trailing steps.
  std::size_t window = 256;
  /// Incident documents kept; triggers beyond the cap are counted in
  /// triggers_total() but drop no window.
  std::size_t max_incidents = 8;
  /// Capture on InvariantMonitor violations (the default reason to fly
  /// with a recorder at all).
  bool trigger_on_violation = true;
  /// Minimum steps between captured incidents. A violation storm — one per
  /// step, the common faulty-link shape — would otherwise burn the whole
  /// incident budget on near-identical windows. 0 captures every trigger.
  std::int64_t cooldown = 0;
  /// Optional custom trigger, checked against every record() with the new
  /// record already in the window. Sweeps may invoke cell recorders on any
  /// thread, so the predicate must be safe to call concurrently (stateless
  /// lambdas qualify).
  std::function<bool(const StepRecord&)> step_trigger;
};

class FlightRecorder {
 public:
  /// Throws std::invalid_argument when config.window is 0 — a windowless
  /// recorder would emit incidents with no forensics in them.
  explicit FlightRecorder(FlightRecorderConfig config = {});

  const FlightRecorderConfig& config() const { return config_; }

  /// Run context embedded verbatim in every incident (the simulator stores
  /// the same fields the tracer's `config` event carries), making each
  /// report self-contained.
  void set_context(Json context) { context_ = std::move(context); }
  /// Adds one key to the context (sweep cells tag severity / policy / cell
  /// index so a merged incident still names its grid cell).
  void annotate(std::string_view key, Json value);

  /// Appends to the ring (overwriting the oldest record once full), then
  /// evaluates the custom step trigger.
  void record(const StepRecord& record);

  /// Violation hook called by faults::InvariantMonitor through the
  /// Telemetry handle. Captures an incident when trigger_on_violation and
  /// the cooldown allow.
  void on_violation(std::int64_t t, std::string_view kind,
                    std::int64_t magnitude);

  /// Captured `rtsmooth-incident-v1` documents, oldest first.
  const std::vector<Json>& incidents() const { return incidents_; }
  /// Total record() calls (merged recorders sum).
  std::int64_t steps_recorded() const { return steps_recorded_; }
  /// Triggers that fired, including those suppressed by max_incidents or
  /// the cooldown.
  std::int64_t triggers_total() const { return triggers_total_; }

  /// Chronological copy of the current ring contents.
  std::vector<StepRecord> window() const;

  /// Submission-order fold for sweep(): appends `other`'s incidents (up to
  /// max_incidents) and sums the counters. Ring contents do not merge —
  /// windows from different runs have no common timeline.
  void merge(const FlightRecorder& other);

  /// Writes one incident document (trailing newline) to `path`; throws
  /// std::runtime_error naming the path on open or write failure.
  static void write_incident(const Json& incident, const std::string& path);

 private:
  void capture(Json trigger);

  FlightRecorderConfig config_;
  Json context_ = Json::object();
  std::vector<StepRecord> ring_;
  std::size_t next_ = 0;        ///< ring slot the next record lands in
  std::size_t filled_ = 0;      ///< min(steps in ring, window)
  std::int64_t steps_recorded_ = 0;
  std::int64_t triggers_total_ = 0;
  std::int64_t last_capture_t_ = 0;
  bool captured_any_ = false;
  std::vector<Json> incidents_;
};

}  // namespace rtsmooth::obs
