// Deterministic random number generation for trace synthesis and randomized
// policies.
//
// All randomness in the library flows through `Rng`, a thin seeded wrapper
// around xoshiro256** (public-domain algorithm by Blackman & Vigna). Using
// our own generator rather than std::mt19937 guarantees bit-identical traces
// across standard libraries and platforms, which the experiment suite relies
// on for regression pinning.

#pragma once

#include <array>
#include <cstdint>

namespace rtsmooth {

/// Seeded pseudo-random generator with a stable cross-platform stream.
/// Satisfies std::uniform_random_bit_generator, so it composes with <random>
/// distributions when exact reproducibility of the *distribution* is not
/// required; the helpers below are used where it is.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64, as
  /// recommended by the xoshiro authors (avoids all-zero states).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit word.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(N(mu, sigma)). `mu`/`sigma` are the parameters of the
  /// underlying normal, not the moments of the lognormal.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Creates an independent generator for a named sub-stream, so that adding
  /// a consumer of randomness does not perturb unrelated streams.
  Rng split(std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace rtsmooth
