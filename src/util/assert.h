// Contract-checking macros in the style of the C++ Core Guidelines GSL
// (I.6 "Prefer Expects() for expressing preconditions", E.8 Ensures()).
//
// Violations abort with a diagnostic: smoothing schedules are accounting
// machines, and a silently violated invariant (a negative buffer occupancy, a
// byte played before it arrived) would corrupt every downstream measurement.
// These checks therefore stay on in all build types.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace rtsmooth::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "rtsmooth: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace rtsmooth::detail

// Precondition on the arguments / observable state at function entry.
#define RTS_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::rtsmooth::detail::contract_failure("precondition", #cond, \
                                                 __FILE__, __LINE__))

// Postcondition at function exit.
#define RTS_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::rtsmooth::detail::contract_failure("postcondition", #cond, \
                                                 __FILE__, __LINE__))

// Internal invariant (neither pre- nor post-condition).
#define RTS_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                       \
          : ::rtsmooth::detail::contract_failure("invariant", #cond,  \
                                                 __FILE__, __LINE__))
