#include "util/csv.h"

#include <charconv>
#include <stdexcept>

namespace rtsmooth {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(std::string_view raw) {
  const bool needs_quotes =
      raw.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(raw);
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::field(double v) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

std::string CsvWriter::field(std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

}  // namespace rtsmooth
