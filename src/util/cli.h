// Validated argv parsing for the example and tool binaries. std::stoull and
// friends accept trailing junk, silently wrap on overflow (or throw an
// exception that surfaces as std::terminate), and turn "-1" into 2^64-1;
// these helpers reject all of that with a usage message and exit code 2,
// which is what every binary in this repo means by "bad invocation".

#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace rtsmooth::cli {

[[noreturn]] inline void usage_exit(const char* usage) {
  std::fputs(usage, stderr);
  std::fputc('\n', stderr);
  std::exit(2);
}

/// Parses `text` as a decimal integer in [min, max]; on any failure prints
/// what was wrong with which argument, then the usage string, and exits 2.
inline std::int64_t require_int(std::string_view text, const char* what,
                                const char* usage,
                                std::int64_t min = INT64_MIN,
                                std::int64_t max = INT64_MAX) {
  std::int64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    std::fprintf(stderr, "%s: not a valid integer: '%.*s'\n", what,
                 static_cast<int>(text.size()), text.data());
    usage_exit(usage);
  }
  if (value < min || value > max) {
    std::fprintf(stderr, "%s: %lld out of range [%lld, %lld]\n", what,
                 static_cast<long long>(value), static_cast<long long>(min),
                 static_cast<long long>(max));
    usage_exit(usage);
  }
  return value;
}

/// Parses `text` as a floating-point number in [min, max]; same failure
/// contract as require_int.
inline double require_double(std::string_view text, const char* what,
                             const char* usage, double min, double max) {
  double value = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    std::fprintf(stderr, "%s: not a valid number: '%.*s'\n", what,
                 static_cast<int>(text.size()), text.data());
    usage_exit(usage);
  }
  if (value < min || value > max) {
    std::fprintf(stderr, "%s: %g out of range [%g, %g]\n", what, value, min,
                 max);
    usage_exit(usage);
  }
  return value;
}

}  // namespace rtsmooth::cli
