// Fixed-capacity circular buffer for the simulator's steady-state hot path.
//
// The simulate loop used to keep its FIFO state (server chunks, in-flight
// link batches, the retransmission queue) in std::deque, whose block
// allocator churns the heap a couple of times per dozen steps — enough to
// dominate the per-step cost once everything else is arithmetic. RingBuffer
// replaces those deques with one contiguous power-of-two slab that is sized
// once from the run's configuration (DESIGN.md Sect. 12 gives the capacity
// formulas) and then never reallocates: push/pop are an index mask away,
// and the zero-allocation guard test pins that the whole simulate loop
// performs no heap allocation after warm-up.
//
// Semantics mirror the std::deque subset the core used: indexable FIFO with
// push_back / pop_front / erase-at-index preserving element order. Growth
// is still supported (doubling) as a safety valve for misestimated
// capacities — it can only happen during warm-up or on pathological inputs,
// both outside the steady-state contract.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace rtsmooth {

/// Indexable FIFO over a power-of-two slab. T must be default-constructible
/// and move-assignable; popped slots are left moved-from (never destroyed
/// until the buffer itself dies), so a T that owns storage — e.g. a
/// std::vector — keeps nothing after being moved out and the slab never
/// frees behind the caller's back.
template <class T>
class RingBuffer {
 public:
  RingBuffer() = default;

  /// Ensures room for at least `n` elements without reallocation.
  void reserve(std::size_t n) {
    if (n > capacity()) grow(n);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  T& operator[](std::size_t i) {
    RTS_EXPECTS(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    RTS_EXPECTS(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == capacity()) grow(size_ + 1);
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  /// Removes and returns the head element (slot left moved-from).
  T pop_front() {
    RTS_EXPECTS(size_ > 0);
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return out;
  }

  /// Removes element i, preserving the order of the rest (deque::erase
  /// semantics). Shifts whichever side is shorter.
  void erase(std::size_t i) {
    RTS_EXPECTS(i < size_);
    if (i < size_ - i - 1) {
      for (std::size_t j = i; j > 0; --j) {
        (*this)[j] = std::move((*this)[j - 1]);
      }
      head_ = (head_ + 1) & mask_;
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
    }
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  void grow(std::size_t need) {
    const std::size_t new_cap = round_up_pow2(need < 4 ? 4 : need);
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move((*this)[i]);
    slots_ = std::move(next);
    mask_ = new_cap - 1;
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rtsmooth
