// ASCII table printer. Benchmark binaries reproduce the paper's figures as
// numeric series; this renders them as aligned tables on stdout, in the same
// row/series layout the paper's plots use.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtsmooth {

/// Column-aligned text table with a header row. Cells are preformatted
/// strings; alignment is right for cells that parse as numbers, left
/// otherwise.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a rule under the header and padded columns.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with fixed precision — the common cell type.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtsmooth
