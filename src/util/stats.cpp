#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace rtsmooth {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ += delta * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double q) {
  RTS_EXPECTS(!xs.empty());
  RTS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double autocorrelation_lag1(std::span<const double> xs) {
  if (xs.size() < 3) return 0.0;
  RunningStats s;
  for (double x : xs) s.add(x);
  const double mean = s.mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - mean;
    den += d * d;
    if (i + 1 < xs.size()) num += d * (xs[i + 1] - mean);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  int unit = 0;
  double value = bytes;
  while (std::abs(value) >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace rtsmooth
