#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace rtsmooth {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  // xoshiro256** step.
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RTS_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo (Lemire-style rejection kept simple: retry on overflow
  // zone; expected iterations < 2).
  const std::uint64_t zone = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= zone);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RTS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  // Box-Muller; draw u1 away from zero to keep the log finite.
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  RTS_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  RTS_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split(std::uint64_t stream_id) {
  // Derive a child seed from our own stream plus the id; consuming exactly
  // one draw keeps parent usage deterministic regardless of children count.
  const std::uint64_t base = (*this)();
  return Rng(base ^ (stream_id * 0xD1B54A32D192ED03ULL));
}

}  // namespace rtsmooth
