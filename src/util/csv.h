// Minimal CSV emitter for experiment output. Benches accept `--csv <path>`
// and dump their series through this writer so figures can be re-plotted
// outside the harness.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace rtsmooth {

/// Writes RFC-4180-style CSV: fields containing commas, quotes or newlines
/// are quoted, embedded quotes doubled. One writer per file; rows are
/// flushed as they are written.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure — experiment output silently vanishing is worse than aborting.
  explicit CsvWriter(const std::string& path);

  /// Writes one row of already-formatted fields.
  void row(const std::vector<std::string>& fields);

  /// Convenience formatters producing round-trippable text.
  static std::string field(double v);
  static std::string field(std::int64_t v);

 private:
  static std::string escape(std::string_view raw);
  std::ofstream out_;
};

}  // namespace rtsmooth
