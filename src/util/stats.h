// Small descriptive-statistics helpers used by the trace calibrator, the
// experiment harness and the benchmark printers.

#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace rtsmooth {

/// Streaming accumulator for count/mean/variance/min/max (Welford's method,
/// numerically stable for the long frame-size series we feed it).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile of a sample by linear interpolation between closest
/// ranks. `q` in [0, 1]; the input need not be sorted (a copy is sorted).
double percentile(std::span<const double> xs, double q);

/// Lag-1 autocorrelation coefficient; 0 for fewer than three samples.
/// Used to validate that the synthetic MPEG model is bursty (scene-level
/// correlation), not i.i.d.
double autocorrelation_lag1(std::span<const double> xs);

/// Human-readable byte count ("38.1 KB", "1.2 MB") for report printing.
std::string format_bytes(double bytes);

}  // namespace rtsmooth
