#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

#include "util/assert.h"

namespace rtsmooth {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RTS_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RTS_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

}  // namespace rtsmooth
