// Multi-hop (tandem) smoothing — the internetwork setting of Rexford &
// Towsley [15] in the paper's related work. A stream crosses a chain of
// store-and-forward hops, each with its own buffer, link rate and
// propagation delay, each running the generic algorithm (work-conserving
// FIFO, Eq. (3) drops via a DropPolicy). The client plays frame k at
// k + sum(P_i) + D, where the end-to-end smoothing delay D must cover the
// worst-case queueing along the path: D = sum(ceil(B_i / R_i)) — the
// per-hop version of the B = D*R law.
//
// Restricted to unit-slice streams: inter-hop forwarding splits data at
// byte granularity, and with unit slices a partially-forwarded slice cannot
// exist, so per-hop drops stay well-defined. (Thm 3.5's optimality story is
// a unit-slice story anyway.)
//
// Questions this substrate answers (bench abl_tandem):
//   * homogeneous path: do downstream hops ever drop? (no — the first hop
//     shapes traffic to <= R per slot, so B_i >= R suffices downstream);
//   * where should a fixed buffer budget live when one hop is the
//     bottleneck? (at the bottleneck, and the bench quantifies the cost of
//     getting it wrong).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/drop_policy.h"
#include "core/link.h"
#include "core/metrics.h"
#include "core/server_buffer.h"
#include "core/slice.h"

namespace rtsmooth::tandem {

struct HopConfig {
  Bytes buffer = 1;     ///< B_i
  Bytes rate = 1;       ///< R_i, bytes per slot
  Time link_delay = 1;  ///< P_i of the link leaving this hop
};

struct TandemReport {
  SimReport end_to_end;            ///< offered / played / client tallies
  std::vector<Tally> hop_drops;    ///< bytes shed at each hop
  Time playout_offset = 0;         ///< sum(P_i) + D actually used
  Time smoothing_delay = 0;        ///< the D component
};

class TandemSimulator {
 public:
  /// `stream` must be unit-slice. One drop policy instance per hop is
  /// cloned from `policy`. If `smoothing_delay` < 0 it defaults to
  /// sum(ceil(B_i / R_i)) — the lossless-at-client choice.
  TandemSimulator(const Stream& stream, std::vector<HopConfig> hops,
                  const DropPolicy& policy, Time smoothing_delay = -1,
                  Bytes client_buffer = -1);

  TandemReport run();

 private:
  struct Hop {
    HopConfig config;
    ServerBuffer buffer;
    std::unique_ptr<DropPolicy> policy;
    std::unique_ptr<FixedDelayLink> link;
    Tally dropped;
  };

  const Stream* stream_;
  std::vector<Hop> hops_;
  Time smoothing_delay_;
  Bytes client_buffer_;
  bool ran_ = false;
};

}  // namespace rtsmooth::tandem
