#include "tandem/tandem.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::tandem {
namespace {

std::size_t type_index(FrameType t) { return static_cast<std::size_t>(t); }

}  // namespace

TandemSimulator::TandemSimulator(const Stream& stream,
                                 std::vector<HopConfig> hops,
                                 const DropPolicy& policy,
                                 Time smoothing_delay, Bytes client_buffer)
    : stream_(&stream) {
  RTS_EXPECTS(stream.unit_slices());
  RTS_EXPECTS(!hops.empty());
  Time default_delay = 0;
  for (const HopConfig& config : hops) {
    RTS_EXPECTS(config.buffer >= 1);
    RTS_EXPECTS(config.rate >= 1);
    RTS_EXPECTS(config.link_delay >= 0);
    default_delay += (config.buffer + config.rate - 1) / config.rate;
    hops_.push_back(Hop{.config = config,
                        .buffer = {},
                        .policy = policy.clone(),
                        .link = std::make_unique<FixedDelayLink>(
                            config.link_delay),
                        .dropped = {}});
  }
  smoothing_delay_ = smoothing_delay >= 0 ? smoothing_delay : default_delay;
  // By default give the client the end-to-end queueing budget D * R_last.
  client_buffer_ = client_buffer >= 1
                       ? client_buffer
                       : std::max<Bytes>(1, smoothing_delay_ *
                                                hops.back().rate);
}

TandemReport TandemSimulator::run() {
  RTS_EXPECTS(!ran_);
  ran_ = true;
  TandemReport report;
  report.smoothing_delay = smoothing_delay_;
  Time total_link_delay = 0;
  for (const Hop& hop : hops_) total_link_delay += hop.config.link_delay;
  report.playout_offset = total_link_delay + smoothing_delay_;

  // Per-hop drop accounting through the buffer observers.
  for (Hop& hop : hops_) {
    Tally* tally = &hop.dropped;
    hop.buffer.set_drop_observer(
        [tally](const SliceRun& run, std::size_t, std::int64_t slices) {
          tally->add(run.slice_size * slices,
                     run.weight * static_cast<Weight>(slices), slices);
        });
  }

  Client client(*stream_, client_buffer_, report.playout_offset);
  SimReport& sim = report.end_to_end;
  ArrivalCursor cursor(*stream_);
  const Time horizon = stream_->horizon();
  const Time last_playout = horizon - 1 + report.playout_offset;
  Bytes min_rate = hops_.front().config.rate;
  for (const Hop& hop : hops_) min_rate = std::min(min_rate, hop.config.rate);
  const Time limit = last_playout + stream_->total_bytes() / min_rate +
                     static_cast<Time>(hops_.size()) + 16;

  auto hops_busy = [&] {
    for (const Hop& hop : hops_) {
      if (!hop.buffer.empty() || !hop.link->idle()) return true;
    }
    return false;
  };

  std::vector<SentPiece> pieces;
  for (Time t = 0; t <= last_playout || hops_busy(); ++t) {
    RTS_ASSERT(t <= limit);
    // Source into hop 0.
    const ArrivalBatch batch = cursor.step(t);
    for (std::size_t i = 0; i < batch.runs.size(); ++i) {
      const SliceRun& run = batch.runs[i];
      hops_.front().buffer.push(run, batch.first_index + i, run.count);
      sim.offered.add(run.total_bytes(), run.total_weight(), run.count);
      sim.offered_by_type[type_index(run.frame_type)].add(
          run.total_bytes(), run.total_weight(), run.count);
    }
    // Each hop: drop per Eq. (3), send, forward downstream. Hops are
    // processed in path order, so zero-delay links still deliver in-step.
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      Hop& hop = hops_[h];
      const Bytes planned = std::min(hop.config.rate, hop.buffer.occupancy());
      const Bytes target = hop.config.buffer + planned;
      if (hop.buffer.occupancy() > target) {
        hop.policy->shed(hop.buffer, target);
      }
      pieces.clear();
      hop.buffer.send(planned, pieces);
      hop.link->submit(t, pieces);
      const auto delivered = hop.link->deliver(t);
      if (h + 1 < hops_.size()) {
        Hop& next = hops_[h + 1];
        for (const SentPiece& piece : delivered) {
          // Unit slices: a piece of n bytes is n whole slices.
          next.buffer.push(*piece.run, piece.run_index, piece.bytes);
        }
      } else {
        client.deliver(t, delivered, sim, nullptr);
      }
      sim.max_server_occupancy =
          std::max(sim.max_server_occupancy, hop.buffer.occupancy());
    }
    client.play(t, sim, nullptr);
    sim.steps = t + 1;
  }
  client.finalize(sim);
  for (Hop& hop : hops_) {
    report.hop_drops.push_back(hop.dropped);
    sim.dropped_server += hop.dropped;
    for (std::size_t i = 0; i < hop.buffer.chunk_count(); ++i) {
      const Chunk& c = hop.buffer.chunk(i);
      sim.residual.add(c.bytes(),
                       c.run->weight * static_cast<Weight>(c.slices),
                       c.slices);
    }
  }
  RTS_ENSURES(sim.conserves());
  return report;
}

}  // namespace rtsmooth::tandem
