#include "daemon/watchdog.h"

#include <cmath>

#include "obs/flight_recorder.h"
#include "util/assert.h"

namespace rtsmooth::daemon {
namespace {

Bytes occupancy_line(Bytes server_buffer, double frac) {
  const double line = static_cast<double>(server_buffer) * frac;
  return static_cast<Bytes>(std::llround(line));
}

}  // namespace

Watchdog::Watchdog(SloConfig config, Bytes server_buffer,
                   obs::FlightRecorder* recorder, obs::Registry* registry)
    : config_(config),
      server_buffer_(server_buffer),
      occupancy_line_(occupancy_line(server_buffer,
                                     config.max_occupancy_frac)),
      recorder_(recorder) {
  RTS_EXPECTS(config_.window >= 1);
  RTS_EXPECTS(config_.cooldown >= 0);
  ring_.resize(static_cast<std::size_t>(config_.window));
  if (registry != nullptr) {
    stall_breaches_ = &registry->counter("daemon.slo.stall_rate_breaches");
    loss_breaches_ = &registry->counter("daemon.slo.loss_rate_breaches");
    occupancy_breaches_ = &registry->counter("daemon.slo.occupancy_breaches");
    burn_breaches_ = &registry->counter("daemon.slo.burn_breaches");
    incidents_counter_ = &registry->counter("daemon.slo.incidents");
    suppressed_counter_ = &registry->counter("daemon.slo.cooldown_suppressed");
  }
}

void Watchdog::set_server_buffer(Bytes server_buffer) {
  server_buffer_ = server_buffer;
  occupancy_line_ = occupancy_line(server_buffer, config_.max_occupancy_frac);
}

double Watchdog::stall_rate() const {
  if (!window_full() || playouts_ == 0) return 0.0;
  return static_cast<double>(degraded_) / static_cast<double>(playouts_);
}

double Watchdog::loss_rate() const {
  if (!window_full() || offered_weight_ <= 0.0) return 0.0;
  return lost_weight_ / offered_weight_;
}

double Watchdog::occupancy_step_frac() const {
  if (!window_full()) return 0.0;
  return static_cast<double>(occupancy_high_) /
         static_cast<double>(ring_.size());
}

void Watchdog::breach(Time t, const char* kind, double rate, double limit,
                      std::int64_t* counter, Time* last_capture,
                      obs::Counter* breach_counter) {
  (void)limit;
  ++*counter;
  if (breach_counter != nullptr) breach_counter->add(1);
  if (recorder_ == nullptr) return;
  if (*last_capture >= 0 && t - *last_capture < config_.cooldown) {
    ++cooldown_suppressed_;
    if (suppressed_counter_ != nullptr) suppressed_counter_->add(1);
    return;
  }
  *last_capture = t;
  ++incidents_captured_;
  if (incidents_counter_ != nullptr) incidents_counter_->add(1);
  recorder_->on_violation(t, kind,
                          static_cast<std::int64_t>(std::llround(rate * 1e6)));
}

void Watchdog::observe_burn(Time t, const obs::BurnStatus& status) {
  if (!config_.enabled || !status.firing) return;
  ++breaches_.burn;
  if (burn_breaches_ != nullptr) burn_breaches_->add(1);
  if (recorder_ == nullptr) return;
  const std::string& name = status.budget->name;
  const auto [it, inserted] = last_burn_capture_.try_emplace(name, Time{-1});
  Time& last = it->second;
  if (!inserted && last >= 0 && t - last < config_.cooldown) {
    ++cooldown_suppressed_;
    if (suppressed_counter_ != nullptr) suppressed_counter_->add(1);
    return;
  }
  last = t;
  ++incidents_captured_;
  if (incidents_counter_ != nullptr) incidents_counter_->add(1);
  // The short window is the fast-detection window — its burn is the
  // magnitude a responder wants first.
  recorder_->on_violation(
      t, "slo.burn." + name,
      static_cast<std::int64_t>(std::llround(status.short_burn * 1e6)));
}

Watchdog::Pressure Watchdog::observe(Time t, const StepStats& stats) {
  if (!config_.enabled) return {};
  Sample& slot = ring_[static_cast<std::size_t>(
      seen_ % static_cast<std::int64_t>(ring_.size()))];
  // Retire the sample falling out of the window from the running sums.
  playouts_ -= slot.playouts;
  degraded_ -= slot.degraded;
  offered_weight_ -= slot.offered_weight;
  lost_weight_ -= slot.lost_weight;
  occupancy_high_ -= slot.occupancy_high;
  slot.playouts = stats.playouts;
  slot.degraded = stats.degraded;
  slot.offered_weight = stats.offered_weight;
  // Clamp: a retirement burst can momentarily release more loss weight than
  // this window offered; rates stay in [0, +) either way.
  slot.lost_weight = stats.lost_weight > 0.0 ? stats.lost_weight : 0.0;
  slot.occupancy_high = stats.server_occupancy > occupancy_line_ ? 1 : 0;
  playouts_ += slot.playouts;
  degraded_ += slot.degraded;
  offered_weight_ += slot.offered_weight;
  lost_weight_ += slot.lost_weight;
  occupancy_high_ += slot.occupancy_high;
  ++seen_;

  Pressure pressure;
  if (!window_full()) return pressure;
  const double stall = stall_rate();
  const double loss = loss_rate();
  const double occ = occupancy_step_frac();
  pressure.stall = stall > config_.max_stall_rate;
  pressure.loss = loss > config_.max_weighted_loss_rate;
  pressure.occupancy = occ > config_.max_occupancy_step_frac;
  if (pressure.stall) {
    breach(t, "slo.stall_rate", stall, config_.max_stall_rate,
           &breaches_.stall, &last_stall_capture_, stall_breaches_);
  }
  if (pressure.loss) {
    breach(t, "slo.loss_rate", loss, config_.max_weighted_loss_rate,
           &breaches_.loss, &last_loss_capture_, loss_breaches_);
  }
  if (pressure.occupancy) {
    breach(t, "slo.occupancy", occ, config_.max_occupancy_step_frac,
           &breaches_.occupancy, &last_occupancy_capture_,
           occupancy_breaches_);
  }
  return pressure;
}

}  // namespace rtsmooth::daemon
