// Frame ingestion for the live serving loop (rtsmoothd, DESIGN.md Sect. 13).
//
// A FrameSource is polled once per serving step and appends the frames that
// arrive in that slot. Three implementations cover the serving modes the
// daemon supports:
//
//  * GeneratorSource — in-process synthetic MPEG-style traffic (GOP pattern
//    plus lognormal sizes), one frame per channel per step, endless or
//    bounded. Deterministic from its seed and allocation-free per poll.
//  * ReplaySource — replays a trace::FrameSequence (e.g. a stock clip or a
//    trace file), one frame per step, optionally looping.
//  * PipeSource — reads fixed-size binary WireFrame records from a
//    non-blocking pipe/socket fd into a bounded byte ring. A slot with no
//    complete record is reported as Stalled (the daemon's retry/backoff
//    machinery decides what to do with that); EOF is End.
//
// poll() never blocks. The retry/timeout/backoff policy for stalled ingest
// lives in the daemon (IngestConfig), not in the sources, so it is applied
// uniformly and tested in one place.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "trace/frame.h"
#include "util/rng.h"

namespace rtsmooth::daemon {

/// One ingested frame: which stream (channel) it belongs to, its type, and
/// its encoded size. The engine slices it into unit slices on admission.
struct IngestFrame {
  std::int32_t channel = 0;
  FrameType type = FrameType::Other;
  Bytes size = 0;

  bool operator==(const IngestFrame&) const = default;
};

enum class PollStatus {
  Ready,    ///< zero or more frames appended; source healthy
  Stalled,  ///< no data available this slot (transient; caller may retry)
  End,      ///< source exhausted; no further frames will ever arrive
};

class FrameSource {
 public:
  virtual ~FrameSource() = default;

  /// Appends the frames arriving at step `t` to `out` (which the caller
  /// recycles across steps). Must not block.
  virtual PollStatus poll(Time t, std::vector<IngestFrame>& out) = 0;

  /// Number of distinct channels this source emits on (>= 1).
  virtual std::int32_t channels() const = 0;

  /// Bytes of a trailing partial record discarded at end of stream. Only
  /// wire-format sources (PipeSource) can see one; 0 elsewhere.
  virtual std::size_t truncated_tail() const { return 0; }
  /// Records rejected as undecodable (bad magic/type). Only wire-format
  /// sources can see one; 0 elsewhere.
  virtual std::int64_t rejected_records() const { return 0; }
};

/// Synthetic per-channel MPEG-style traffic: a fixed GOP pattern cycled per
/// channel with lognormally distributed sizes around per-type means chosen
/// so the aggregate mean is `mean_frame_bytes`. Channel c's generator is
/// seeded with split(seed, c), so adding channels never perturbs existing
/// ones.
struct GeneratorConfig {
  std::int32_t channels = 4;
  std::string gop_pattern = "IBBPBBPBB";
  Bytes mean_frame_bytes = 2048;
  Bytes max_frame_bytes = 8192;
  Bytes min_frame_bytes = 64;
  double size_sigma = 0.3;  ///< lognormal sigma of the size multiplier
  std::uint64_t seed = 1;
  /// Frames each channel emits before the source reports End; 0 = endless.
  std::int64_t frames_per_channel = 0;
};

class GeneratorSource final : public FrameSource {
 public:
  explicit GeneratorSource(GeneratorConfig config);

  PollStatus poll(Time t, std::vector<IngestFrame>& out) override;
  std::int32_t channels() const override { return config_.channels; }

 private:
  struct ChannelState {
    Rng rng;
    std::int64_t emitted = 0;
  };

  GeneratorConfig config_;
  std::vector<ChannelState> state_;
  /// Per-type mean sizes derived from the GOP pattern's type mix.
  double type_mean_[4] = {0.0, 0.0, 0.0, 0.0};
};

/// Replays a recorded frame sequence, one frame per step on one channel.
struct ReplayConfig {
  std::int32_t channel = 0;
  bool loop = false;
};

class ReplaySource final : public FrameSource {
 public:
  explicit ReplaySource(trace::FrameSequence frames, ReplayConfig config = {});

  PollStatus poll(Time t, std::vector<IngestFrame>& out) override;
  std::int32_t channels() const override { return config_.channel + 1; }

  std::size_t position() const { return pos_; }

 private:
  trace::FrameSequence frames_;
  ReplayConfig config_;
  std::size_t pos_ = 0;
};

/// Fixed 16-byte little-endian wire record for PipeSource. Producers write
/// these back-to-back; the reader tolerates arbitrary fragmentation.
struct WireFrame {
  static constexpr std::uint32_t kMagic = 0x52545346u;  // "RTSF"
  static constexpr std::size_t kWireSize = 16;

  /// Serializes `frame` into `buf[0..kWireSize)`.
  static void encode(const IngestFrame& frame, unsigned char* buf);
  /// Decodes `buf[0..kWireSize)`; returns false on bad magic or bad type.
  static bool decode(const unsigned char* buf, IngestFrame& frame);
};

/// Reads WireFrame records from a non-blocking fd into a bounded ring.
/// Stalled = a read round produced no complete record and the fd is still
/// open (EAGAIN, or a partial record is buffered). End = EOF with no
/// complete record left (a partial tail at EOF is counted as truncated).
struct PipeConfig {
  /// Ring capacity in whole records; reads never buffer more than this.
  std::size_t ring_frames = 256;
  /// Frames consumed per poll (backpressure toward the producer).
  std::size_t max_frames_per_poll = 64;
  bool own_fd = true;  ///< close(fd) on destruction
};

class PipeSource final : public FrameSource {
 public:
  PipeSource(int fd, std::int32_t channels, PipeConfig config = {});
  ~PipeSource() override;

  PipeSource(const PipeSource&) = delete;
  PipeSource& operator=(const PipeSource&) = delete;

  PollStatus poll(Time t, std::vector<IngestFrame>& out) override;
  std::int32_t channels() const override { return channels_; }

  /// Bytes of a trailing partial record discarded at EOF (0 on clean ends).
  std::size_t truncated_tail() const override { return truncated_tail_; }
  /// Records rejected for bad magic/type (producer bug or desync).
  std::int64_t rejected_records() const override { return rejected_; }

  /// Test/producer helper: blocking best-effort write of one record to `fd`.
  /// Returns false on a write error (e.g. closed pipe).
  static bool write_frame(int fd, const IngestFrame& frame);

 private:
  int fd_;
  std::int32_t channels_;
  PipeConfig config_;
  std::vector<unsigned char> ring_;
  std::size_t fill_ = 0;  ///< valid bytes at the front of ring_
  bool eof_ = false;
  std::size_t truncated_tail_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace rtsmooth::daemon
