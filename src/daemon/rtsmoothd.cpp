#include "daemon/rtsmoothd.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/prometheus.h"
#include "util/assert.h"

namespace rtsmooth::daemon {

const char* to_string(PlanCase c) {
  switch (c) {
    case PlanCase::Balanced: return "balanced";
    case PlanCase::ServerBufferDeficit: return "server_buffer_deficit";
    case PlanCase::ServerBufferExcess: return "server_buffer_excess";
    case PlanCase::ClientBufferDeficit: return "client_buffer_deficit";
    case PlanCase::ClientBufferExcess: return "client_buffer_excess";
    case PlanCase::BufferMismatch: return "buffer_mismatch";
  }
  return "unknown";
}

void classify_plan(const EngineConfig& config, std::vector<PlanCase>& out) {
  const Bytes balanced = config.rate * config.smoothing_delay;
  const std::size_t before = out.size();
  if (config.server_buffer < balanced) {
    out.push_back(PlanCase::ServerBufferDeficit);
  }
  if (config.server_buffer > balanced) {
    out.push_back(PlanCase::ServerBufferExcess);
  }
  if (config.client_buffer < balanced) {
    out.push_back(PlanCase::ClientBufferDeficit);
  }
  if (config.client_buffer > balanced) {
    out.push_back(PlanCase::ClientBufferExcess);
  }
  if (config.server_buffer != config.client_buffer) {
    out.push_back(PlanCase::BufferMismatch);
  }
  if (out.size() == before) out.push_back(PlanCase::Balanced);
}

std::vector<obs::BurnBudget> default_slo_budgets() {
  std::vector<obs::BurnBudget> budgets;
  budgets.push_back(obs::BurnBudget{
      .name = "stall",
      .bad = {"daemon.degraded_playouts"},
      .total = {"daemon.playouts"},
      .budget = 0.05});
  budgets.push_back(obs::BurnBudget{
      .name = "deadline_miss",
      .bad = {"client.late_bytes"},
      .total = {"client.played_bytes", "client.late_bytes"},
      .budget = 0.01});
  budgets.push_back(obs::BurnBudget{
      .name = "shed",
      .bad = {"daemon.admission.budget_refused_bytes",
              "daemon.admission.channel_shed_bytes",
              "daemon.admission.floor_shed_bytes",
              "daemon.admission.slot_refused_bytes"},
      .total = {"daemon.ingest.polled_bytes"},
      .budget = 0.05});
  return budgets;
}

Daemon::Daemon(DaemonOptions options, std::unique_ptr<FrameSource> source,
               LinkFactory link_factory)
    : options_(std::move(options)),
      source_(std::move(source)),
      link_factory_(std::move(link_factory)),
      recorder_(options_.recorder),
      watchdog_(options_.slo, options_.engine.server_buffer, &recorder_,
                &registry_),
      ladder_(options_.ladder) {
  RTS_EXPECTS(source_ != nullptr);
  const std::string err = options_.engine.validate();
  if (!err.empty()) {
    throw std::invalid_argument("rtsmoothd: invalid engine config: " + err);
  }
  engine_ = make_engine(options_.engine);
  channel_stats_.resize(static_cast<std::size_t>(source_->channels()));

  if (!options_.stats_socket_path.empty()) {
    obs::StatsServerConfig scfg;
    scfg.socket_path = options_.stats_socket_path;
    stats_ = std::make_unique<obs::StatsServer>(std::move(scfg));
  }
  if (options_.timeline.enabled()) {
    timeline_ = std::make_unique<obs::Timeline>(options_.timeline);
  } else if (const std::string terr = options_.timeline.validate();
             !terr.empty()) {
    throw std::invalid_argument("rtsmoothd: invalid timeline config: " + terr);
  }
  ctr_stalled_polls_ = &registry_.counter("daemon.ingest.stalled_polls");
  ctr_ingest_retries_ = &registry_.counter("daemon.ingest.retries");
  ctr_sighup_ = &registry_.counter("daemon.snapshot.sighup");
  ctr_polled_bytes_ = &registry_.counter("daemon.ingest.polled_bytes");
  ctr_playouts_ = &registry_.counter("daemon.playouts");
  ctr_degraded_playouts_ = &registry_.counter("daemon.degraded_playouts");
  ctr_slot_refused_bytes_ =
      &registry_.counter("daemon.admission.slot_refused_bytes");
  ctr_floor_shed_bytes_ =
      &registry_.counter("daemon.admission.floor_shed_bytes");
  ctr_channel_shed_bytes_ =
      &registry_.counter("daemon.admission.channel_shed_bytes");
  ctr_budget_refused_bytes_ =
      &registry_.counter("daemon.admission.budget_refused_bytes");
  gauge_truncated_tail_ =
      &registry_.gauge("daemon.ingest.truncated_tail_bytes");
  gauge_rejected_records_ =
      &registry_.gauge("daemon.ingest.rejected_records");

  obs::Json ctx = obs::Json::object();
  ctx["mode"] = "daemon";
  ctx["policy"] = options_.engine.policy;
  ctx["server_buffer"] = options_.engine.server_buffer;
  ctx["client_buffer"] = options_.engine.client_buffer;
  ctx["rate"] = options_.engine.rate;
  ctx["smoothing_delay"] = options_.engine.smoothing_delay;
  ctx["link_delay"] = options_.engine.link_delay;
  ctx["channels"] = source_->channels();
  recorder_.set_context(std::move(ctx));
}

std::unique_ptr<LiveEngine> Daemon::make_engine(const EngineConfig& config) {
  // Counters are get-or-create, so engines rebuilt across reconfigurations
  // keep accumulating into the same instruments.
  obs::Telemetry telemetry;
  telemetry.registry = &registry_;
  telemetry.recorder = &recorder_;
  std::unique_ptr<Link> link =
      link_factory_ ? link_factory_(config) : nullptr;
  return std::make_unique<LiveEngine>(config, telemetry, std::move(link));
}

void Daemon::schedule_reconfig(Time at_step, EnginePlan plan) {
  auto it = reconfig_queue_.begin();
  while (it != reconfig_queue_.end() && it->at_step <= at_step) ++it;
  reconfig_queue_.insert(it, ReconfigRequest{at_step, std::move(plan)});
}

void Daemon::schedule_reconfig_cycle(Time every,
                                     std::vector<EnginePlan> plans) {
  if (every < 1) {
    throw std::invalid_argument("reconfig cycle period must be >= 1");
  }
  if (plans.empty()) {
    throw std::invalid_argument("reconfig cycle needs at least one plan");
  }
  cycle_every_ = every;
  cycle_next_ = steps_ + every;
  cycle_index_ = 0;
  cycle_plans_ = std::move(plans);
}

int Daemon::serve() {
  RTS_EXPECTS(!served_);
  served_ = true;
  std::ostream* log = options_.log;
  if (stats_ != nullptr) {
    stats_->start();
    publish_stats();
    if (log != nullptr) {
      *log << "rtsmoothd: stats endpoint on " << stats_->socket_path()
           << '\n';
    }
  }
  if (log != nullptr) {
    const EngineConfig& cfg = engine_->config();
    *log << "rtsmoothd: serving " << source_->channels()
         << " channel(s), policy " << cfg.policy << ", B_s="
         << cfg.server_buffer << " B_c=" << cfg.client_buffer << " R="
         << cfg.rate << " D=" << cfg.smoothing_delay << " P="
         << cfg.link_delay << '\n';
  }
  while (true) {
    if (stop_signal() != 0) break;
    if (options_.max_steps > 0 && steps_ >= options_.max_steps) break;
    if (cycle_every_ > 0 && !draining_ && steps_ >= cycle_next_) {
      schedule_reconfig(steps_,
                        cycle_plans_[cycle_index_ % cycle_plans_.size()]);
      ++cycle_index_;
      // Period counts from the fire step, so a long drain never produces a
      // burst of catch-up reconfigs afterwards.
      cycle_next_ = steps_ + cycle_every_;
    }
    if (!draining_ && !reconfig_queue_.empty() &&
        reconfig_queue_.front().at_step <= steps_) {
      begin_reconfig();
    }
    poll_frames();
    if (draining_) {
      drain_step();
    } else {
      serve_step();
    }
    ++steps_;
    if (timeline_ != nullptr &&
        steps_ % options_.timeline.slot_steps == 0) {
      sample_timeline();
    }
    if (hup_requested_.exchange(false, std::memory_order_relaxed)) {
      // Count first so the forced snapshot already shows its own trigger.
      ctr_sighup_->add(1);
      const std::string text = snapshot_text();
      if (!options_.snapshot_path.empty()) write_snapshot(text);
      if (stats_ != nullptr) {
        stats_->publish(text, obs::to_prometheus(registry_), series_text());
      }
      if (log != nullptr) {
        *log << "rtsmoothd: SIGHUP snapshot at step " << steps_ << '\n';
      }
    } else {
      if (options_.snapshot_every > 0 && !options_.snapshot_path.empty() &&
          steps_ % options_.snapshot_every == 0) {
        write_snapshot();
      }
      if (stats_ != nullptr && options_.stats_publish_every > 0 &&
          steps_ % options_.stats_publish_every == 0) {
        publish_stats();
      }
    }
    if (source_ended_ && pending_.empty() && !draining_ &&
        engine_->quiescent()) {
      break;
    }
  }
  if (log != nullptr && stop_signal() != 0) {
    *log << "rtsmoothd: stop signal " << stop_signal()
         << " received at step " << steps_ << ", draining\n";
  }
  shutdown_drain();
  write_outputs();
  const bool ok = total_report().conserves() && ingest_ledger_conserves();
  if (log != nullptr && !ok) {
    *log << "rtsmoothd: LEDGER FAILURE — report or ingest accounting does "
            "not conserve\n";
  }
  return ok ? 0 : 1;
}

void Daemon::poll_frames() {
  if (source_ended_) return;
  std::vector<IngestFrame> buf = take_group_buffer();
  PollStatus status = source_->poll(steps_, buf);
  if (status == PollStatus::Stalled && buf.empty()) {
    ++stalled_polls_;
    ctr_stalled_polls_->add(1);
    std::int64_t sleep_us = options_.ingest.retry_sleep_us;
    for (std::int32_t attempt = 0; attempt < options_.ingest.max_retries &&
                                   status == PollStatus::Stalled;
         ++attempt) {
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      sleep_us = std::min(sleep_us * 2, options_.ingest.retry_sleep_max_us);
      ++ingest_retries_;
      ctr_ingest_retries_->add(1);
      status = source_->poll(steps_, buf);
    }
  }
  // Monotone source-side tallies mirrored as max-gauges; for wire sources
  // a non-zero value flags producer desync or a chopped tail.
  gauge_truncated_tail_->update(
      static_cast<std::int64_t>(source_->truncated_tail()));
  gauge_rejected_records_->update(source_->rejected_records());
  if (status == PollStatus::End) {
    source_ended_ = true;
    if (options_.log != nullptr) {
      *options_.log << "rtsmoothd: source ended at step " << steps_ << '\n';
    }
  }
  if (status == PollStatus::Stalled && buf.empty()) {
    ++consecutive_stalled_;
    if (options_.ingest.stall_timeout_steps > 0 &&
        consecutive_stalled_ >= options_.ingest.stall_timeout_steps) {
      source_ended_ = true;
      ingest_timed_out_ = true;
      registry_.counter("daemon.ingest.stall_timeout").add(1);
      if (options_.log != nullptr) {
        *options_.log << "rtsmoothd: ingest stalled for "
                      << consecutive_stalled_
                      << " steps, declaring source dead at step " << steps_
                      << '\n';
      }
    }
  } else {
    consecutive_stalled_ = 0;
  }
  if (buf.empty()) {
    recycle_group_buffer(std::move(buf));
    return;
  }
  const trace::ValueModel& values = engine_->config().values;
  const Bytes polled_before = polled_bytes_;
  for (const IngestFrame& f : buf) {
    ++polled_frames_;
    polled_bytes_ += f.size;
    if (f.channel >= 0 &&
        static_cast<std::size_t>(f.channel) < channel_stats_.size()) {
      ChannelStats& cs = channel_stats_[static_cast<std::size_t>(f.channel)];
      cs.offered_bytes += f.size;
      cs.offered_weight += values.slice_weight(f.type, f.size);
      ++cs.frames;
    }
  }
  ctr_polled_bytes_->add(polled_bytes_ - polled_before);
  pending_.push_back(Group{steps_, std::move(buf)});
}

void Daemon::serve_step() {
  admit_buf_.clear();
  // Up to two queued groups per step, in ingest order. In steady state the
  // queue holds exactly the group polled this step, so spacing is the
  // ingest spacing; after a reconfiguration drain the second slot works
  // off the deferred backlog at 2x until the queue is empty again, so the
  // replay lag decays instead of persisting for the rest of the run. The
  // cap keeps a catch-up burst from overwhelming Eq. (3) in one step.
  for (int catch_up = 0; catch_up < 2 && !pending_.empty(); ++catch_up) {
    Group group = pending_.pop_front();
    apply_ladder(group);
    recycle_group_buffer(std::move(group.frames));
  }
  if (!admit_buf_.empty() && ladder_.admission_control()) {
    apply_admission_budget();
  }
  const StepStats st = engine_->step(admit_buf_, ladder_.value_floor());
  observe(st);
  const Watchdog::Pressure pressure = watchdog_.observe(steps_, st);
  const std::int32_t before = ladder_.rung();
  ladder_.update(pressure.any());
  if (ladder_.rung() != before && options_.log != nullptr) {
    *options_.log << "rtsmoothd: step " << steps_ << " degradation "
                  << (ladder_.rung() > before ? "escalated" : "relaxed")
                  << " to " << to_string(ladder_.level()) << " (rung "
                  << ladder_.rung() << ", floor " << ladder_.value_floor()
                  << ", shed " << ladder_.shed_channels() << ")\n";
  }
}

void Daemon::drain_step() {
  // The ladder is frozen while draining: drain-time stalls are the drain's
  // doing, not load, and must not escalate into the next configuration.
  const StepStats st = engine_->step({});
  observe(st);
  watchdog_.observe(steps_, st);
  ++current_drain_steps_;
  ++reconfig_drain_steps_;
  if (engine_->quiescent()) {
    finish_reconfig();
    return;
  }
  if (current_drain_steps_ >= drain_ceiling()) {
    engine_->abort_residual();
    forced_residual_ = true;
    registry_.counter("daemon.drain.forced_residual").add(1);
    if (options_.log != nullptr) {
      *options_.log << "rtsmoothd: drain ceiling (" << current_drain_steps_
                    << " steps) hit at step " << steps_
                    << "; residual written off\n";
    }
    finish_reconfig();
  }
}

void Daemon::begin_reconfig() {
  ReconfigRequest req = std::move(reconfig_queue_.front());
  reconfig_queue_.pop_front();
  const EngineConfig cfg = plan_config(req.plan);
  const std::string err = cfg.validate();
  if (!err.empty()) {
    ++reconfigs_rejected_;
    registry_.counter("daemon.reconfig.rejected").add(1);
    if (options_.log != nullptr) {
      *options_.log << "rtsmoothd: reconfig at step " << steps_
                    << " rejected: " << err << '\n';
    }
    return;
  }
  pending_plan_ = std::move(req.plan);
  draining_ = true;
  current_drain_steps_ = 0;
  cases_buf_.clear();
  classify_plan(cfg, cases_buf_);
  for (const PlanCase c : cases_buf_) {
    registry_.counter(std::string("daemon.plan.") + to_string(c)).add(1);
  }
  if (options_.log != nullptr) {
    *options_.log << "rtsmoothd: reconfig begins at step " << steps_
                  << " -> B_s=" << cfg.server_buffer << " B_c="
                  << cfg.client_buffer << " R=" << cfg.rate << " D="
                  << cfg.smoothing_delay << " P=" << cfg.link_delay
                  << " policy=" << cfg.policy << "; Sect. 3.3 case(s):";
    for (const PlanCase c : cases_buf_) *options_.log << ' ' << to_string(c);
    *options_.log << '\n';
  }
}

void Daemon::finish_reconfig() {
  total_report_ += engine_->report();
  // The new engine's local step 0 is mapped to the oldest deferred group
  // (frames queued during the drain replay with their original spacing) or,
  // with nothing queued, to the next global step. The mapping lag is the
  // price of the drain and stays bounded by the drain ceiling.
  epoch_base_ = pending_.empty() ? steps_ + 1 : pending_.front().orig;
  const Time lag = steps_ + 1 - epoch_base_;
  if (lag > max_reconfig_lag_) max_reconfig_lag_ = lag;
  const EngineConfig cfg = plan_config(pending_plan_);
  options_.engine = cfg;
  engine_ = make_engine(cfg);
  engine_->set_record_base(steps_ + 1);
  watchdog_.set_server_buffer(cfg.server_buffer);
  draining_ = false;
  ++reconfigs_applied_;
  registry_.counter("daemon.reconfig.applied").add(1);
  if (options_.log != nullptr) {
    *options_.log << "rtsmoothd: reconfig applied at step " << steps_
                  << " after " << current_drain_steps_
                  << " drain step(s), replay lag " << lag << '\n';
  }
}

void Daemon::apply_ladder(Group& group) {
  const std::int32_t nch = static_cast<std::int32_t>(channel_stats_.size());
  std::int32_t shed = ladder_.shed_channels();
  if (shed > nch - 1) shed = nch - 1;
  if (shed < 0) shed = 0;
  shed_count_ = shed;
  if (shed > 0) {
    // Rank channels by observed mean byte value, cheapest first; a channel
    // with no traffic yet ranks most valuable (shedding it frees nothing).
    shed_rank_.resize(static_cast<std::size_t>(nch));
    for (std::int32_t c = 0; c < nch; ++c) {
      shed_rank_[static_cast<std::size_t>(c)] = c;
    }
    std::sort(shed_rank_.begin(), shed_rank_.end(),
              [this](std::int32_t a, std::int32_t b) {
                const ChannelStats& sa =
                    channel_stats_[static_cast<std::size_t>(a)];
                const ChannelStats& sb =
                    channel_stats_[static_cast<std::size_t>(b)];
                const double ma =
                    sa.offered_bytes > 0
                        ? sa.offered_weight /
                              static_cast<double>(sa.offered_bytes)
                        : std::numeric_limits<double>::infinity();
                const double mb =
                    sb.offered_bytes > 0
                        ? sb.offered_weight /
                              static_cast<double>(sb.offered_bytes)
                        : std::numeric_limits<double>::infinity();
                if (ma != mb) return ma < mb;
                return a < b;
              });
  }
  for (const IngestFrame& f : group.frames) {
    const bool is_shed =
        shed > 0 && std::find(shed_rank_.begin(), shed_rank_.begin() + shed,
                              f.channel) != shed_rank_.begin() + shed;
    if (is_shed) {
      channel_shed_bytes_ += f.size;
      ++channel_shed_frames_;
      ctr_channel_shed_bytes_->add(f.size);
    } else {
      admit_buf_.push_back(f);
    }
  }
}

void Daemon::apply_admission_budget() {
  Bytes budget = engine_->admission_budget();
  Bytes total = 0;
  for (const IngestFrame& f : admit_buf_) total += f.size;
  if (total <= budget) return;
  // Over budget: keep the most valuable bytes, greedily. Deterministic
  // tie-break so identical runs admit identically.
  const trace::ValueModel& values = engine_->config().values;
  std::sort(admit_buf_.begin(), admit_buf_.end(),
            [&values](const IngestFrame& a, const IngestFrame& b) {
              const double va = values.byte_value(a.type);
              const double vb = values.byte_value(b.type);
              if (va != vb) return va > vb;
              if (a.channel != b.channel) return a.channel < b.channel;
              return a.size > b.size;
            });
  std::size_t kept = 0;
  for (const IngestFrame& f : admit_buf_) {
    if (f.size <= budget) {
      budget -= f.size;
      admit_buf_[kept++] = f;
    } else {
      budget_refused_bytes_ += f.size;
      ++budget_refused_frames_;
      ctr_budget_refused_bytes_->add(f.size);
    }
  }
  admit_buf_.resize(kept);
}

void Daemon::observe(const StepStats& stats) {
  admitted_bytes_ += stats.arrived;
  admitted_frames_ += stats.admitted;
  slot_refused_bytes_ += stats.refused;
  slot_refused_frames_ += stats.refused_frames;
  floor_shed_bytes_ += stats.floor_shed;
  playouts_ += stats.playouts;
  degraded_playouts_ += stats.degraded;
  ctr_slot_refused_bytes_->add(stats.refused);
  ctr_floor_shed_bytes_->add(stats.floor_shed);
  ctr_playouts_->add(stats.playouts);
  ctr_degraded_playouts_->add(stats.degraded);
}

Time Daemon::drain_ceiling() const {
  if (options_.max_drain_steps > 0) return options_.max_drain_steps;
  const EngineConfig& cfg = engine_->config();
  Time backoff = 0;
  if (cfg.recovery.enabled) {
    const std::int32_t retries =
        cfg.recovery.max_retries < 20 ? cfg.recovery.max_retries : 20;
    for (std::int32_t i = 0; i < retries; ++i) {
      backoff += cfg.recovery.backoff_base << i;
    }
  }
  return cfg.playout_offset() + cfg.server_buffer / cfg.rate + 1 + backoff +
         4096;
}

void Daemon::shutdown_drain() {
  const Time ceiling = drain_ceiling();
  Time drained = 0;
  while (!engine_->quiescent()) {
    if (drained >= ceiling) {
      engine_->abort_residual();
      forced_residual_ = true;
      registry_.counter("daemon.drain.forced_residual").add(1);
      if (options_.log != nullptr) {
        *options_.log << "rtsmoothd: shutdown drain ceiling (" << drained
                      << " steps) hit; residual written off\n";
      }
      break;
    }
    const StepStats st = engine_->step({});
    observe(st);
    ++drained;
  }
  draining_ = false;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    for (const IngestFrame& f : pending_[i].frames) {
      unserved_bytes_ += f.size;
      ++unserved_frames_;
    }
  }
  pending_.clear();
  if (options_.log != nullptr) {
    *options_.log << "rtsmoothd: drained in " << drained
                  << " step(s) after step " << steps_ << '\n';
  }
}

bool Daemon::ingest_ledger_conserves() const {
  Bytes pending = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    for (const IngestFrame& f : pending_[i].frames) pending += f.size;
  }
  return polled_bytes_ == admitted_bytes_ + budget_refused_bytes_ +
                              slot_refused_bytes_ + channel_shed_bytes_ +
                              unserved_bytes_ + pending;
}

SimReport Daemon::total_report() const {
  SimReport total = total_report_;
  total += engine_->report();
  return total;
}

obs::Json Daemon::snapshot() const {
  const EngineConfig& cfg = engine_->config();
  obs::Json doc = obs::Json::object();
  doc["schema"] = "rtsmooth-soak-v1";

  obs::Json d = obs::Json::object();
  d["channels"] = source_->channels();
  d["policy"] = cfg.policy;
  d["server_buffer"] = cfg.server_buffer;
  d["client_buffer"] = cfg.client_buffer;
  d["rate"] = cfg.rate;
  d["smoothing_delay"] = cfg.smoothing_delay;
  d["link_delay"] = cfg.link_delay;
  d["max_live_runs"] = static_cast<std::int64_t>(cfg.max_live_runs);
  d["balanced"] = cfg.server_buffer == cfg.rate * cfg.smoothing_delay &&
                  cfg.client_buffer == cfg.server_buffer;
  doc["daemon"] = std::move(d);

  doc["steps"] = steps_;
  doc["engine_steps"] = engine_->now();
  doc["stop_signal"] = stop_signal();

  obs::Json rc = obs::Json::object();
  rc["applied"] = reconfigs_applied_;
  rc["rejected"] = reconfigs_rejected_;
  rc["drain_steps"] = reconfig_drain_steps_;
  rc["max_lag"] = max_reconfig_lag_;
  rc["queued"] = static_cast<std::int64_t>(reconfig_queue_.size());
  rc["forced_residual"] = forced_residual_;
  doc["reconfigs"] = std::move(rc);

  obs::Json deg = obs::Json::object();
  deg["level"] = to_string(ladder_.level());
  deg["rung"] = ladder_.rung();
  deg["escalations"] = ladder_.escalations();
  deg["deescalations"] = ladder_.deescalations();
  deg["value_floor"] = ladder_.value_floor();
  deg["shed_channels"] = ladder_.shed_channels();
  doc["degradation"] = std::move(deg);

  obs::Json slo = obs::Json::object();
  obs::Json breaches = obs::Json::object();
  breaches["stall"] = watchdog_.breaches().stall;
  breaches["loss"] = watchdog_.breaches().loss;
  breaches["occupancy"] = watchdog_.breaches().occupancy;
  breaches["burn"] = watchdog_.breaches().burn;
  slo["breaches"] = std::move(breaches);
  slo["incidents_captured"] =
      static_cast<std::int64_t>(recorder_.incidents().size());
  slo["incidents_written"] = incidents_written_;
  slo["cooldown_suppressed"] = watchdog_.cooldown_suppressed();
  slo["triggers"] = recorder_.triggers_total();
  slo["stall_rate"] = watchdog_.stall_rate();
  slo["loss_rate"] = watchdog_.loss_rate();
  slo["occupancy_step_frac"] = watchdog_.occupancy_step_frac();
  doc["slo"] = std::move(slo);

  obs::Json ingest = obs::Json::object();
  ingest["polled_frames"] = polled_frames_;
  ingest["polled_bytes"] = polled_bytes_;
  ingest["stalled_polls"] = stalled_polls_;
  ingest["retries"] = ingest_retries_;
  ingest["source_ended"] = source_ended_;
  ingest["timed_out"] = ingest_timed_out_;
  ingest["pending_depth"] = static_cast<std::int64_t>(pending_.size());
  ingest["truncated_tail_bytes"] =
      static_cast<std::int64_t>(source_->truncated_tail());
  ingest["rejected_records"] = source_->rejected_records();
  doc["ingest"] = std::move(ingest);

  obs::Json adm = obs::Json::object();
  adm["admitted_bytes"] = admitted_bytes_;
  adm["admitted_frames"] = admitted_frames_;
  adm["budget_refused_bytes"] = budget_refused_bytes_;
  adm["budget_refused_frames"] = budget_refused_frames_;
  adm["channel_shed_bytes"] = channel_shed_bytes_;
  adm["channel_shed_frames"] = channel_shed_frames_;
  adm["slot_refused_bytes"] = slot_refused_bytes_;
  adm["slot_refused_frames"] = slot_refused_frames_;
  adm["unserved_bytes"] = unserved_bytes_;
  adm["unserved_frames"] = unserved_frames_;
  adm["floor_shed_bytes"] = floor_shed_bytes_;
  adm["ledger_conserves"] = ingest_ledger_conserves();
  doc["admission"] = std::move(adm);

  const SimReport total = total_report();
  obs::Json rep = obs::Json::object();
  rep["offered_bytes"] = total.offered.bytes;
  rep["offered_weight"] = total.offered.weight;
  rep["played_bytes"] = total.played.bytes;
  rep["dropped_server_bytes"] = total.dropped_server.bytes;
  rep["dropped_client_overflow_bytes"] = total.dropped_client_overflow.bytes;
  rep["dropped_client_late_bytes"] = total.dropped_client_late.bytes;
  rep["lost_link_bytes"] = total.lost_link.bytes;
  rep["residual_bytes"] = total.residual.bytes;
  rep["retransmitted_bytes"] = total.retransmitted_bytes;
  rep["stall_steps"] = total.stall_steps;
  rep["max_server_occupancy"] = total.max_server_occupancy;
  rep["max_client_occupancy"] = total.max_client_occupancy;
  rep["max_lateness"] = total.max_lateness;
  rep["weighted_loss"] = total.weighted_loss();
  rep["conserves"] = total.conserves();
  doc["report"] = std::move(rep);

  if (stats_ != nullptr) {
    // Endpoint-side tallies (rtsmooth-stats-v1). These describe scraper
    // traffic, not the stream, and keep moving after a payload is frozen —
    // the published document reports the counts as of its own build.
    const obs::StatsServer::Stats ss = stats_->stats();
    obs::Json st = obs::Json::object();
    st["schema"] = "rtsmooth-stats-v1";
    st["socket_path"] = stats_->socket_path();
    st["running"] = stats_->running();
    st["accepted"] = ss.accepted;
    st["served_json"] = ss.served_json;
    st["served_metrics"] = ss.served_metrics;
    st["served_health"] = ss.served_health;
    st["unavailable"] = ss.unavailable;
    st["bad_requests"] = ss.bad_requests;
    st["not_found"] = ss.not_found;
    st["io_errors"] = ss.io_errors;
    st["served_series"] = ss.served_series;
    doc["stats"] = std::move(st);
  }

  if (timeline_ != nullptr) {
    // The rolling timeline as of its last sample. In the terminal snapshot
    // the shutdown sample runs right before this document is built, so
    // every series total reconciles exactly against the registry section
    // below (pinned in test_stats_server).
    doc["series"] = timeline_->to_json();
  }

  doc["registry"] = registry_.to_json(false);
  return doc;
}

std::string Daemon::snapshot_text() const { return snapshot().dump() + "\n"; }

std::string Daemon::series_text() const {
  return timeline_ != nullptr ? timeline_->to_json().dump() + "\n"
                              : std::string{};
}

void Daemon::sample_timeline() {
  const std::vector<obs::BurnStatus>& burn =
      timeline_->sample(steps_, registry_);
  for (const obs::BurnStatus& status : burn) {
    watchdog_.observe_burn(steps_, status);
  }
}

void Daemon::publish_stats() {
  if (stats_ == nullptr) return;
  stats_->publish(snapshot_text(), obs::to_prometheus(registry_),
                  series_text());
}

void Daemon::write_snapshot() const { write_snapshot(snapshot_text()); }

void Daemon::write_snapshot(const std::string& text) const {
  // tmp + rename so a reader (or a crash mid-write) never sees a torn
  // snapshot file.
  const std::string tmp = options_.snapshot_path + ".tmp";
  const auto parent =
      std::filesystem::path(options_.snapshot_path).parent_path();
  if (!parent.empty()) {
    std::error_code dir_ec;
    std::filesystem::create_directories(parent, dir_ec);
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (options_.log != nullptr) {
        *options_.log << "rtsmoothd: cannot open snapshot file " << tmp
                      << '\n';
      }
      return;
    }
    out << text;
    if (!out) {
      if (options_.log != nullptr) {
        *options_.log << "rtsmoothd: snapshot write failed: " << tmp << '\n';
      }
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, options_.snapshot_path, ec);
  if (ec && options_.log != nullptr) {
    *options_.log << "rtsmoothd: snapshot rename failed: " << ec.message()
                  << '\n';
  }
}

void Daemon::write_outputs() {
  if (!options_.incident_dir.empty() && !recorder_.incidents().empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.incident_dir, ec);
    if (ec) {
      if (options_.log != nullptr) {
        *options_.log << "rtsmoothd: cannot create incident dir "
                      << options_.incident_dir << ": " << ec.message()
                      << '\n';
      }
    } else {
      for (std::size_t i = 0; i < recorder_.incidents().size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "incident_%04d.json",
                      static_cast<int>(i));
        const std::string path = options_.incident_dir + "/" + name;
        try {
          obs::FlightRecorder::write_incident(recorder_.incidents()[i], path);
          ++incidents_written_;
        } catch (const std::exception& e) {
          if (options_.log != nullptr) {
            *options_.log << "rtsmoothd: " << e.what() << '\n';
          }
        }
      }
    }
  }
  if (timeline_ != nullptr) {
    // Terminal sample, taken after the shutdown drain retired its last
    // byte and deliberately *not* fed to the watchdog: a breach here
    // would bump daemon.slo.* after the sample and break the
    // series-vs-registry conservation the snapshot pins.
    timeline_->sample(steps_, registry_);
  }
  if (!options_.snapshot_path.empty() || stats_ != nullptr) {
    // One document, built after the incident files so incidents_written_
    // is final, serves both sinks: the shutdown snapshot file and the
    // endpoint payload are byte-identical (pinned in test_stats_server).
    const std::string text = snapshot_text();
    if (!options_.snapshot_path.empty()) write_snapshot(text);
    if (stats_ != nullptr) {
      stats_->publish(text, obs::to_prometheus(registry_), series_text());
    }
  }
}

std::vector<IngestFrame> Daemon::take_group_buffer() {
  if (group_pool_.empty()) return {};
  std::vector<IngestFrame> buf = std::move(group_pool_.back());
  group_pool_.pop_back();
  buf.clear();
  return buf;
}

void Daemon::recycle_group_buffer(std::vector<IngestFrame> buf) {
  if (group_pool_.size() >= 64) return;
  buf.clear();
  group_pool_.push_back(std::move(buf));
}

EngineConfig Daemon::plan_config(const EnginePlan& plan) const {
  EngineConfig cfg = engine_->config();
  cfg.server_buffer = plan.server_buffer;
  cfg.client_buffer = plan.client_buffer;
  cfg.rate = plan.rate;
  cfg.smoothing_delay = plan.smoothing_delay;
  cfg.link_delay = plan.link_delay;
  if (!plan.policy.empty()) cfg.policy = plan.policy;
  return cfg;
}

namespace {

std::atomic<Daemon*> g_signal_daemon{nullptr};

void handle_stop_signal(int signum) {
  Daemon* daemon = g_signal_daemon.load(std::memory_order_relaxed);
  if (daemon != nullptr) daemon->request_stop(signum);
}

void handle_hup_signal(int) {
  Daemon* daemon = g_signal_daemon.load(std::memory_order_relaxed);
  if (daemon != nullptr) daemon->request_snapshot();
}

}  // namespace

void install_signal_handlers(Daemon& daemon) {
  g_signal_daemon.store(&daemon, std::memory_order_relaxed);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
#ifdef SIGHUP
  std::signal(SIGHUP, handle_hup_signal);
#endif
}

}  // namespace rtsmooth::daemon
