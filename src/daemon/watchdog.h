// SLO watchdog for the serving loop (DESIGN.md Sect. 13): turns sustained
// service-level breaches into FlightRecorder incidents and feeds the
// degradation ladder a per-step pressure signal.
//
// Three SLOs, each evaluated over a sliding window of engine StepStats with
// O(1) running sums:
//
//   * stall rate       — degraded playouts / playouts
//   * weighted loss    — lost weight / offered weight
//   * occupancy        — fraction of window steps with the server buffer
//                        above `max_occupancy_frac` of B
//
// A breach (window full, rate above its limit) increments a counter and —
// rate-limited by `cooldown` per SLO kind — captures an incident through
// FlightRecorder::on_violation with kind "slo.stall_rate" / "slo.loss_rate"
// / "slo.occupancy" and the rate in parts-per-million as the magnitude.
// The returned Pressure reflects the instantaneous window rates every step
// regardless of cooldown, so the ladder sees overload continuously.
//
// Since the timeline work (DESIGN.md Sect. 16) the watchdog also accepts
// multi-window burn-rate verdicts via observe_burn(): when a timeline
// budget fires (both windows burning at >= threshold), the breach is
// tallied and — per-budget cooldown — captured with kind
// "slo.burn.<budget>" and the short-window burn in ppm as the magnitude.
// Breaches fire on budget exhaustion *rate*, not raw counts.
//
// Every tally is mirrored as a first-class `daemon.slo.*` registry counter
// (stall/loss/occupancy/burn breaches, incidents captured, captures
// suppressed by cooldown), so breach history survives in snapshots and
// Prometheus scrapes, not only as flight-recorder incidents.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.h"
#include "daemon/live_engine.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"

namespace rtsmooth::obs {
class FlightRecorder;
}

namespace rtsmooth::daemon {

struct SloConfig {
  bool enabled = true;
  double max_stall_rate = 0.05;
  double max_weighted_loss_rate = 0.10;
  /// Occupancy line as a fraction of the server buffer B.
  double max_occupancy_frac = 0.95;
  /// Breach when more than this fraction of window steps sit above the line.
  double max_occupancy_step_frac = 0.50;
  Time window = 512;
  /// Minimum steps between captured incidents per SLO kind; breaches during
  /// the cooldown are still counted and still produce pressure.
  Time cooldown = 2048;
};

struct SloBreaches {
  std::int64_t stall = 0;
  std::int64_t loss = 0;
  std::int64_t occupancy = 0;
  std::int64_t burn = 0;  ///< timeline budget-exhaustion breaches
  std::int64_t total() const { return stall + loss + occupancy + burn; }
};

class Watchdog {
 public:
  struct Pressure {
    bool stall = false;
    bool loss = false;
    bool occupancy = false;
    bool any() const { return stall || loss || occupancy; }
  };

  Watchdog(SloConfig config, Bytes server_buffer,
           obs::FlightRecorder* recorder, obs::Registry* registry);

  /// Feeds one step's stats; `t` is the daemon's global step (used for
  /// incident timestamps and cooldowns).
  Pressure observe(Time t, const StepStats& stats);

  /// Feeds one timeline budget's burn verdict (timeline-enabled daemons,
  /// at slot cadence). A firing budget breaches; the incident kind is
  /// "slo.burn.<budget>" with its own cooldown track.
  void observe_burn(Time t, const obs::BurnStatus& status);

  /// Reconfiguration moved the occupancy line.
  void set_server_buffer(Bytes server_buffer);

  const SloBreaches& breaches() const { return breaches_; }
  std::int64_t incidents_captured() const { return incidents_captured_; }
  std::int64_t cooldown_suppressed() const { return cooldown_suppressed_; }
  /// Current window rates (0 while the window is filling).
  double stall_rate() const;
  double loss_rate() const;
  double occupancy_step_frac() const;

 private:
  struct Sample {
    std::int64_t playouts = 0;
    std::int64_t degraded = 0;
    double offered_weight = 0.0;
    double lost_weight = 0.0;
    std::int64_t occupancy_high = 0;  ///< 0/1: post-step occupancy over line
  };

  bool window_full() const {
    return seen_ >= static_cast<std::int64_t>(ring_.size());
  }
  void breach(Time t, const char* kind, double rate, double limit,
              std::int64_t* counter, Time* last_capture,
              obs::Counter* breach_counter);

  SloConfig config_;
  Bytes server_buffer_;
  Bytes occupancy_line_;
  obs::FlightRecorder* recorder_;
  std::vector<Sample> ring_;
  std::int64_t seen_ = 0;
  // Running window sums, O(1) per observe.
  std::int64_t playouts_ = 0;
  std::int64_t degraded_ = 0;
  double offered_weight_ = 0.0;
  double lost_weight_ = 0.0;
  std::int64_t occupancy_high_ = 0;
  SloBreaches breaches_;
  std::int64_t incidents_captured_ = 0;
  std::int64_t cooldown_suppressed_ = 0;
  Time last_stall_capture_ = -1;
  Time last_loss_capture_ = -1;
  Time last_occupancy_capture_ = -1;
  /// Per-budget capture cooldown tracks for observe_burn().
  std::map<std::string, Time, std::less<>> last_burn_capture_;
  obs::Counter* stall_breaches_ = nullptr;
  obs::Counter* loss_breaches_ = nullptr;
  obs::Counter* occupancy_breaches_ = nullptr;
  obs::Counter* burn_breaches_ = nullptr;
  obs::Counter* incidents_counter_ = nullptr;
  obs::Counter* suppressed_counter_ = nullptr;
};

}  // namespace rtsmooth::daemon
