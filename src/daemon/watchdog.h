// SLO watchdog for the serving loop (DESIGN.md Sect. 13): turns sustained
// service-level breaches into FlightRecorder incidents and feeds the
// degradation ladder a per-step pressure signal.
//
// Three SLOs, each evaluated over a sliding window of engine StepStats with
// O(1) running sums:
//
//   * stall rate       — degraded playouts / playouts
//   * weighted loss    — lost weight / offered weight
//   * occupancy        — fraction of window steps with the server buffer
//                        above `max_occupancy_frac` of B
//
// A breach (window full, rate above its limit) increments a counter and —
// rate-limited by `cooldown` per SLO kind — captures an incident through
// FlightRecorder::on_violation with kind "slo.stall_rate" / "slo.loss_rate"
// / "slo.occupancy" and the rate in parts-per-million as the magnitude.
// The returned Pressure reflects the instantaneous window rates every step
// regardless of cooldown, so the ladder sees overload continuously.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "daemon/live_engine.h"
#include "obs/telemetry.h"

namespace rtsmooth::obs {
class FlightRecorder;
}

namespace rtsmooth::daemon {

struct SloConfig {
  bool enabled = true;
  double max_stall_rate = 0.05;
  double max_weighted_loss_rate = 0.10;
  /// Occupancy line as a fraction of the server buffer B.
  double max_occupancy_frac = 0.95;
  /// Breach when more than this fraction of window steps sit above the line.
  double max_occupancy_step_frac = 0.50;
  Time window = 512;
  /// Minimum steps between captured incidents per SLO kind; breaches during
  /// the cooldown are still counted and still produce pressure.
  Time cooldown = 2048;
};

struct SloBreaches {
  std::int64_t stall = 0;
  std::int64_t loss = 0;
  std::int64_t occupancy = 0;
  std::int64_t total() const { return stall + loss + occupancy; }
};

class Watchdog {
 public:
  struct Pressure {
    bool stall = false;
    bool loss = false;
    bool occupancy = false;
    bool any() const { return stall || loss || occupancy; }
  };

  Watchdog(SloConfig config, Bytes server_buffer,
           obs::FlightRecorder* recorder, obs::Registry* registry);

  /// Feeds one step's stats; `t` is the daemon's global step (used for
  /// incident timestamps and cooldowns).
  Pressure observe(Time t, const StepStats& stats);

  /// Reconfiguration moved the occupancy line.
  void set_server_buffer(Bytes server_buffer);

  const SloBreaches& breaches() const { return breaches_; }
  /// Current window rates (0 while the window is filling).
  double stall_rate() const;
  double loss_rate() const;
  double occupancy_step_frac() const;

 private:
  struct Sample {
    std::int64_t playouts = 0;
    std::int64_t degraded = 0;
    double offered_weight = 0.0;
    double lost_weight = 0.0;
    std::int64_t occupancy_high = 0;  ///< 0/1: post-step occupancy over line
  };

  bool window_full() const {
    return seen_ >= static_cast<std::int64_t>(ring_.size());
  }
  void breach(Time t, const char* kind, double rate, double limit,
              std::int64_t* counter, Time* last_capture,
              obs::Counter* breach_counter);

  SloConfig config_;
  Bytes server_buffer_;
  Bytes occupancy_line_;
  obs::FlightRecorder* recorder_;
  std::vector<Sample> ring_;
  std::int64_t seen_ = 0;
  // Running window sums, O(1) per observe.
  std::int64_t playouts_ = 0;
  std::int64_t degraded_ = 0;
  double offered_weight_ = 0.0;
  double lost_weight_ = 0.0;
  std::int64_t occupancy_high_ = 0;
  SloBreaches breaches_;
  Time last_stall_capture_ = -1;
  Time last_loss_capture_ = -1;
  Time last_occupancy_capture_ = -1;
  obs::Counter* stall_breaches_ = nullptr;
  obs::Counter* loss_breaches_ = nullptr;
  obs::Counter* occupancy_breaches_ = nullptr;
};

}  // namespace rtsmooth::daemon
