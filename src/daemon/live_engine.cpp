#include "daemon/live_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.h"
#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::daemon {
namespace {

std::size_t type_index(FrameType t) { return static_cast<std::size_t>(t); }

ServerConfig server_config(const EngineConfig& config) {
  ServerConfig sc{.buffer = config.server_buffer,
                  .rate = config.rate,
                  .recovery = config.recovery};
  sc.recovery.smoothing_delay = config.smoothing_delay;
  return sc;
}

Bytes piece_bytes(std::span<const SentPiece> pieces) {
  Bytes sum = 0;
  for (const SentPiece& piece : pieces) sum += piece.bytes;
  return sum;
}

double lost_weight_so_far(const SimReport& r) {
  return r.dropped_server.weight + r.dropped_client_overflow.weight +
         r.dropped_client_late.weight + r.lost_link.weight;
}

}  // namespace

std::string EngineConfig::validate() const {
  if (server_buffer < 1) return "server_buffer must be >= 1";
  if (client_buffer < 1) return "client_buffer must be >= 1";
  if (rate < 1) return "rate must be >= 1 byte/step";
  if (smoothing_delay < 0) return "smoothing_delay must be >= 0";
  if (link_delay < 0) return "link_delay must be >= 0";
  if (max_live_runs < 2) return "max_live_runs must be >= 2";
  if (recovery.max_retries < 0 || recovery.max_retries > 62) {
    return "recovery.max_retries must be in [0, 62]";
  }
  if (recovery.backoff_base < 1) return "recovery.backoff_base must be >= 1";
  return {};
}

LiveEngine::LiveEngine(EngineConfig config, obs::Telemetry telemetry,
                       std::unique_ptr<Link> link)
    : config_(std::move(config)),
      telemetry_(telemetry),
      server_(server_config(config_),
              make_policy(config_.policy, config_.policy_seed)),
      link_(link ? std::move(link)
                 : std::make_unique<FixedDelayLink>(config_.link_delay)) {
  RTS_EXPECTS(config_.validate().empty());
  slots_.resize(config_.max_live_runs);
  due_ring_.resize(static_cast<std::size_t>(config_.playout_offset()) + 2);
  arrived_this_step_.reserve(16);
  server_.set_link_loss_sink([this](const SliceRun& /*run*/,
                                    std::size_t run_index, Bytes bytes) {
    RunSlot& s = slot_of(run_index);
    s.link_lost += bytes;
    maybe_retire(s);
  });
  server_.set_drop_sink([this](const SliceRun& run, std::size_t run_index,
                               std::int64_t slices) {
    RunSlot& s = slot_of(run_index);
    s.dropped_server += run.slice_size * slices;
    maybe_retire(s);
  });
  if (telemetry_.enabled()) {
    server_.set_telemetry(telemetry_);
    link_->set_telemetry(telemetry_);
  }
  if (telemetry_.registry != nullptr) {
    obs::Registry& reg = *telemetry_.registry;
    played_bytes_ = &reg.counter("client.played_bytes");
    late_bytes_ = &reg.counter("client.late_bytes");
    overflow_bytes_ = &reg.counter("client.overflow_bytes");
    refused_frames_ = &reg.counter("daemon.admission.slot_refused_frames");
    retired_runs_ = &reg.counter("daemon.retired_runs");
    max_client_occupancy_ = &reg.gauge("client.max_occupancy");
    max_lateness_ = &reg.gauge("client.max_lateness_steps");
    const obs::HistogramSpec steps_spec = obs::HistogramSpec::exponential(1, 16);
    hist_slack_ = &reg.histogram("client.slack_steps", steps_spec);
    hist_lateness_ = &reg.histogram("client.lateness_steps", steps_spec);
  }
}

void LiveEngine::admit_frame(const IngestFrame& frame, StepStats& st) {
  RTS_EXPECTS(frame.size >= 1);
  RunSlot& s = slots_[next_seq_ % slots_.size()];
  if (s.active) {
    // The pipeline still owes bytes from max_live_runs frames ago:
    // backpressure instead of unbounded state.
    st.refused += frame.size;
    st.refused_frames += 1;
    st.refused_weight += config_.values.byte_value(frame.type) *
                         static_cast<double>(frame.size);
    if (refused_frames_ != nullptr) refused_frames_->add(1);
    return;
  }
  s = RunSlot{};
  s.seq = next_seq_++;
  s.active = true;
  s.run.arrival = now_;
  s.run.slice_size = 1;
  s.run.count = frame.size;
  s.run.weight = config_.values.byte_value(frame.type);
  s.run.frame_type = frame.type;
  s.run.frame_index = static_cast<Time>(s.seq);
  ++active_runs_;
  server_.admit(s.run, static_cast<std::size_t>(s.seq));
  due_ring_[static_cast<std::size_t>(
               (now_ + config_.playout_offset()) %
               static_cast<Time>(due_ring_.size()))]
      .push_back(s.seq);
  st.arrived += frame.size;
  st.admitted += 1;
  st.offered_weight += s.run.total_weight();
}

StepStats LiveEngine::step(std::span<const IngestFrame> frames,
                           double value_floor) {
  RTS_EXPECTS(!aborted_);
  const Time t = now_;
  StepStats st;
  const Bytes played_before = report_.played.bytes;
  const Bytes dropped_server_before = report_.dropped_server.bytes;
  const Bytes retx_before = report_.retransmitted_bytes;
  const Bytes client_dropped_before = total_late_ + total_overflow_;
  const double lost_weight_before = lost_weight_so_far(report_);

  const auto nacks = link_->collect_nacks(t);
  server_.begin_step(t, nacks, report_, nullptr);
  for (const IngestFrame& frame : frames) admit_frame(frame, st);
  if (value_floor > 0.0 && server_.buffer().occupancy() > 0) {
    st.floor_shed = server_.shed_below_value(value_floor, report_).bytes;
  }
  pieces_.clear();
  server_.finish_step(pieces_);
  st.sent = piece_bytes(pieces_);
  // An empty send is not submitted: moving an empty vector into the link
  // would surrender the recycled storage (same idiom as the simulator).
  if (!pieces_.empty()) link_->submit(t, std::move(pieces_));
  auto delivered = link_->deliver(t);
  st.delivered = piece_bytes(delivered);
  deliver(t, delivered, st);
  play(t, st);
  settle_capacity(st);
  report_.max_client_occupancy =
      std::max(report_.max_client_occupancy, occupancy_);
  if (max_client_occupancy_ != nullptr) max_client_occupancy_->update(occupancy_);
  RTS_ENSURES(occupancy_ >= 0);

  st.played = report_.played.bytes - played_before;
  st.dropped_server = report_.dropped_server.bytes - dropped_server_before;
  st.dropped_client = total_late_ + total_overflow_ - client_dropped_before;
  st.retransmitted = report_.retransmitted_bytes - retx_before;
  st.lost_weight = lost_weight_so_far(report_) - lost_weight_before;
  st.server_occupancy = server_.buffer().occupancy();
  st.client_occupancy = occupancy_;
  st.link_idle = link_->idle();

  if (telemetry_.recorder != nullptr) {
    obs::StepRecord record;
    record.t = record_base_ + t;
    record.arrived = st.arrived;
    record.sent = st.sent;
    record.delivered = st.delivered;
    record.played = st.played;
    record.dropped_server = st.dropped_server;
    record.dropped_client = st.dropped_client;
    record.retransmitted = st.retransmitted;
    record.server_occupancy = st.server_occupancy;
    record.client_occupancy = st.client_occupancy;
    record.link_idle = st.link_idle;
    record.stalled = st.degraded > 0;
    telemetry_.recorder->record(record);
  }

  if (pieces_.capacity() < delivered.capacity()) pieces_ = std::move(delivered);
  ++now_;
  report_.steps = now_;
  return st;
}

void LiveEngine::deliver(Time t, std::span<const SentPiece> pieces,
                         StepStats& st) {
  (void)st;
  for (const SentPiece& piece : pieces) {
    RTS_ASSERT(piece.bytes > 0);
    RunSlot& s = slot_of(piece.run_index);
    const Time playout_at = s.run.arrival + config_.playout_offset();
    if (s.played_out || playout_at < t) {
      // deliver() runs before play() each step, so a missed deadline always
      // means playout_at < t: the byte is (t - playout_at) steps late.
      const Time lateness = t - playout_at;
      report_.max_lateness = std::max(report_.max_lateness, lateness);
      s.late_lost += piece.bytes;
      total_late_ += piece.bytes;
      if (late_bytes_ != nullptr) late_bytes_->add(piece.bytes);
      if (hist_lateness_ != nullptr) {
        hist_lateness_->record(lateness, piece.bytes);
        max_lateness_->update(report_.max_lateness);
      }
      maybe_retire(s);
      continue;
    }
    if (hist_slack_ != nullptr) {
      hist_slack_->record(playout_at - t, piece.bytes);
    }
    s.stored += piece.bytes;
    occupancy_ += piece.bytes;
    arrived_this_step_.push_back({s.seq, piece.bytes});
  }
}

void LiveEngine::play(Time t, StepStats& st) {
  auto& due =
      due_ring_[static_cast<std::size_t>(t % static_cast<Time>(due_ring_.size()))];
  for (const std::uint64_t seq : due) {
    RunSlot& s = slot_of(static_cast<std::size_t>(seq));
    RTS_ASSERT(!s.played_out);
    s.played_out = true;
    // Unit slices: every stored byte is a complete slice; leftovers cannot
    // occur, so Skip-vs-Stall underflow policies coincide here.
    const Bytes played = s.stored;
    s.played = played;
    occupancy_ -= s.stored;
    s.stored = 0;
    const Weight w = s.run.weight * static_cast<Weight>(played);
    report_.played.add(played, w, played);
    report_.played_by_type[type_index(s.run.frame_type)].add(played, w, played);
    if (played_bytes_ != nullptr) played_bytes_->add(played);
    st.playouts += 1;
    if (played < s.run.count) st.degraded += 1;
    maybe_retire(s);
  }
  due.clear();
}

void LiveEngine::settle_capacity(StepStats& st) {
  (void)st;
  // Evict the newest delivered bytes until the post-playout occupancy fits
  // (mirrors Client::settle_capacity byte for byte).
  while (occupancy_ > config_.client_buffer && !arrived_this_step_.empty()) {
    auto& [seq, bytes] = arrived_this_step_.back();
    RunSlot& s = slot_of(static_cast<std::size_t>(seq));
    const Bytes excess = occupancy_ - config_.client_buffer;
    const Bytes evict = std::min({excess, bytes, s.stored});
    if (evict == 0) {
      // This piece's frame already played this step; nothing left to evict.
      arrived_this_step_.pop_back();
      continue;
    }
    s.stored -= evict;
    s.overflow_lost += evict;
    total_overflow_ += evict;
    if (overflow_bytes_ != nullptr) overflow_bytes_->add(evict);
    occupancy_ -= evict;
    bytes -= evict;
    if (bytes == 0) arrived_this_step_.pop_back();
  }
  RTS_ASSERT(occupancy_ <= config_.client_buffer);
  arrived_this_step_.clear();
}

void LiveEngine::maybe_retire(RunSlot& s) {
  if (!s.played_out || s.accounted() != s.run.count) return;
  // After playout the slot stores nothing (play zeroes it; later deliveries
  // go to late_lost), so accounted()==count means no byte is owed anywhere —
  // not in the server buffer, the retransmission queue, the link, or the
  // client. Apply Client::finalize()'s per-run ledger math (unit slices:
  // leftover losses cannot occur and slice counts equal byte counts).
  RTS_ASSERT(s.stored == 0);
  const Weight value = s.run.weight;
  if (s.overflow_lost > 0) {
    report_.dropped_client_overflow.add(
        s.overflow_lost, value * static_cast<Weight>(s.overflow_lost),
        s.overflow_lost);
  }
  if (s.link_lost > 0) {
    report_.lost_link.add(s.link_lost,
                          value * static_cast<Weight>(s.link_lost), s.link_lost);
  }
  if (s.late_lost > 0) {
    report_.dropped_client_late.add(
        s.late_lost, value * static_cast<Weight>(s.late_lost), s.late_lost);
  }
  s.active = false;
  --active_runs_;
  if (retired_runs_ != nullptr) retired_runs_->add(1);
}

void LiveEngine::abort_residual() {
  RTS_EXPECTS(!aborted_);
  aborted_ = true;
  for (RunSlot& s : slots_) {
    if (!s.active) continue;
    // Classify what is already terminal exactly as maybe_retire would...
    const Weight value = s.run.weight;
    if (s.overflow_lost > 0) {
      report_.dropped_client_overflow.add(
          s.overflow_lost, value * static_cast<Weight>(s.overflow_lost),
          s.overflow_lost);
    }
    if (s.link_lost > 0) {
      report_.lost_link.add(s.link_lost,
                            value * static_cast<Weight>(s.link_lost),
                            s.link_lost);
    }
    if (s.late_lost > 0) {
      report_.dropped_client_late.add(
          s.late_lost, value * static_cast<Weight>(s.late_lost), s.late_lost);
    }
    // ...and everything still owed (client-stored, server-buffered, in
    // flight, queued for retransmission) becomes residual in one number.
    const Bytes rem = s.run.count - s.accounted();
    RTS_ASSERT(rem >= 0);
    if (rem > 0) {
      report_.residual.add(rem, value * static_cast<Weight>(rem), rem);
    }
    occupancy_ -= s.stored;
    s.stored = 0;
    s.active = false;
    --active_runs_;
  }
  RTS_ASSERT(active_runs_ == 0);
  occupancy_ = 0;
}

}  // namespace rtsmooth::daemon
