// LiveEngine: the simulator pipeline (server -> link -> client) repackaged
// for endless serving (DESIGN.md Sect. 13).
//
// The batch SmoothingSimulator is stream-indexed: the Stream is immutable,
// the Client holds one RunState per run, and the run loop ends at a known
// horizon. A daemon has none of that — frames keep coming, so run state
// must be *recycled*. The engine keeps a fixed arena of RunSlots; an
// admitted frame becomes a unit-slice SliceRun pinned in its slot (the
// server buffer and link hold pointers into it), identified by a monotone
// sequence number, and the slot is reused only once every byte of the run
// is in a terminal accounting state (played, dropped, lost, or written
// off). A full target slot means the pipeline still owes bytes from
// max_live_runs frames ago — admission is refused, which is the engine's
// built-in backpressure and keeps memory bounded forever.
//
// The client side mirrors core/client.h semantics exactly (Skip underflow
// policy, ArrivalPlusOffset playout) but retires runs incrementally with
// the same per-run ledger math Client::finalize() applies at end of run —
// so a drained engine's SimReport is byte-identical to a batch run over the
// same arrivals, which tests/test_reconfig.cpp pins differentially against
// the reference oracle.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/generic_algorithm.h"
#include "core/link.h"
#include "core/metrics.h"
#include "core/slice.h"
#include "core/types.h"
#include "daemon/frame_source.h"
#include "obs/telemetry.h"
#include "trace/value_model.h"
#include "util/assert.h"

namespace rtsmooth::daemon {

struct EngineConfig {
  Bytes server_buffer = 1;  ///< B
  Bytes client_buffer = 1;  ///< Bc
  Bytes rate = 1;           ///< R
  Time smoothing_delay = 1;  ///< D
  Time link_delay = 1;       ///< P
  std::string policy = "greedy";
  std::uint64_t policy_seed = 7;
  trace::ValueModel values = trace::ValueModel::mpeg_default();
  RecoveryConfig recovery{};
  /// Run-slot arena size == max frames simultaneously in flight anywhere in
  /// the pipeline. Admission refuses (backpressure) when the target slot is
  /// still owed bytes.
  std::size_t max_live_runs = 4096;

  Time playout_offset() const { return link_delay + smoothing_delay; }
  /// Empty when well-formed, else a human-readable problem description.
  std::string validate() const;
};

/// What one engine step did — the watchdog's sample and the daemon's ledger.
struct StepStats {
  Bytes arrived = 0;            ///< admitted bytes
  std::int64_t admitted = 0;    ///< admitted frames
  Bytes refused = 0;            ///< bytes refused for slot exhaustion
  std::int64_t refused_frames = 0;
  double refused_weight = 0.0;
  Bytes floor_shed = 0;     ///< bytes shed by the value floor this step
  Bytes sent = 0;
  Bytes delivered = 0;
  Bytes played = 0;
  Bytes dropped_server = 0;
  Bytes dropped_client = 0;  ///< late + overflow bytes
  Bytes retransmitted = 0;
  double offered_weight = 0.0;  ///< weight admitted this step
  double lost_weight = 0.0;     ///< weight newly in a loss category
  std::int64_t playouts = 0;    ///< frames whose playout step this was
  std::int64_t degraded = 0;    ///< playouts with bytes missing
  Bytes server_occupancy = 0;   ///< post-step
  Bytes client_occupancy = 0;   ///< post-step
  bool link_idle = false;
};

class LiveEngine {
 public:
  /// `link` overrides the default lossless FixedDelayLink(link_delay) —
  /// the daemon injects fault links here. Aborts on invalid config; call
  /// config.validate() first for a recoverable error path.
  LiveEngine(EngineConfig config, obs::Telemetry telemetry = {},
             std::unique_ptr<Link> link = nullptr);

  /// Runs one step at the engine-local time now(): NACK triage, admissions,
  /// value-floor shed (when `value_floor` > 0), Eq. (2)/(3) server step,
  /// link transfer, delivery, playout, capacity settling, incremental run
  /// retirement. Frames refused for slot exhaustion are counted in the
  /// returned stats and are NOT part of the engine's offered ledger.
  StepStats step(std::span<const IngestFrame> frames, double value_floor = 0.0);

  /// Admission headroom in bytes: what this step can take without Eq. (3)
  /// shedding (B + R minus current occupancy). The daemon's admission-
  /// control rung budgets against this.
  Bytes admission_budget() const {
    const Bytes room = config_.server_buffer + config_.rate -
                       server_.buffer().occupancy();
    return room > 0 ? room : 0;
  }

  /// True when nothing is owed anywhere: server buffer and retransmission
  /// queue empty, link empty, no client-stored bytes, no live runs.
  bool quiescent() const {
    return aborted_ || (server_.idle() && link_->idle() && occupancy_ == 0 &&
                        active_runs_ == 0);
  }

  /// Moves everything still owed by live runs (server-buffered, in flight,
  /// client-stored) into report().residual and deactivates the engine, for
  /// drains that hit their ceiling (e.g. a permanent link outage). After
  /// this the engine is quiescent and must not be stepped.
  void abort_residual();

  /// Offset added to engine-local time in FlightRecorder step records, so a
  /// daemon's incident windows keep strictly rising timestamps across
  /// engine rebuilds. Semantic time (arrivals, deadlines) stays local.
  void set_record_base(Time base) { record_base_ = base; }

  Time now() const { return now_; }
  std::int64_t active_runs() const { return active_runs_; }
  const EngineConfig& config() const { return config_; }
  /// Cumulative report over everything admitted so far. conserves() holds
  /// exactly when no runs are live (drained or aborted).
  const SimReport& report() const { return report_; }
  Bytes server_occupancy() const { return server_.buffer().occupancy(); }
  Bytes client_occupancy() const { return occupancy_; }

 private:
  struct RunSlot {
    SliceRun run{};  ///< pinned: server chunks and link pieces point here
    std::uint64_t seq = 0;
    bool active = false;
    bool played_out = false;
    Bytes stored = 0;          ///< client-buffered, not yet played
    Bytes played = 0;
    Bytes overflow_lost = 0;
    Bytes late_lost = 0;
    Bytes link_lost = 0;
    Bytes dropped_server = 0;
    /// Bytes already in a terminal accounting category.
    Bytes accounted() const {
      return played + overflow_lost + late_lost + link_lost + dropped_server;
    }
  };

  RunSlot& slot_of(std::size_t run_index) {
    RunSlot& s = slots_[run_index % slots_.size()];
    RTS_ASSERT(s.active && s.seq == run_index);
    return s;
  }
  void admit_frame(const IngestFrame& frame, StepStats& st);
  void deliver(Time t, std::span<const SentPiece> pieces, StepStats& st);
  void play(Time t, StepStats& st);
  void settle_capacity(StepStats& st);
  /// Retires `s` if every byte is terminal and playout has passed: applies
  /// Client::finalize()'s per-run ledger math to report_ and frees the slot.
  void maybe_retire(RunSlot& s);

  EngineConfig config_;
  obs::Telemetry telemetry_;
  SmoothingServer server_;
  std::unique_ptr<Link> link_;
  std::vector<RunSlot> slots_;
  /// due_ring_[t % size] = seqs whose playout step is t; entry vectors are
  /// cleared after playout and their capacity reused.
  std::vector<std::vector<std::uint64_t>> due_ring_;
  std::vector<std::pair<std::uint64_t, Bytes>> arrived_this_step_;
  std::vector<SentPiece> pieces_;
  SimReport report_;
  Time now_ = 0;
  Time record_base_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t active_runs_ = 0;
  Bytes occupancy_ = 0;  ///< client buffer occupancy
  bool aborted_ = false;
  Bytes total_late_ = 0;
  Bytes total_overflow_ = 0;
  // Instruments resolved once at construction; null when telemetry is off.
  obs::Counter* played_bytes_ = nullptr;
  obs::Counter* late_bytes_ = nullptr;
  obs::Counter* overflow_bytes_ = nullptr;
  obs::Counter* refused_frames_ = nullptr;
  obs::Counter* retired_runs_ = nullptr;
  obs::Gauge* max_client_occupancy_ = nullptr;
  obs::Gauge* max_lateness_ = nullptr;
  obs::Histogram* hist_slack_ = nullptr;     ///< playout_at - t, stored bytes
  obs::Histogram* hist_lateness_ = nullptr;  ///< t - playout_at, late bytes
};

}  // namespace rtsmooth::daemon
