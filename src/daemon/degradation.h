// Overload-degradation ladder (DESIGN.md Sect. 13): a monotone sequence of
// increasingly aggressive responses to sustained SLO pressure.
//
//   Normal -> AdmissionControl -> ValueFloor(f, 2f, ... f_max) -> StreamShed
//
// Each rung maps to a concrete mechanism applied by the daemon:
//   * AdmissionControl — per-step admissions are budgeted against the
//     engine's admission headroom (B + R - occupancy), most valuable bytes
//     first, so Eq. (3) never has to shed blind.
//   * ValueFloor — the engine sheds every buffered slice at or below the
//     floor (SmoothingServer::shed_below_value, the greedy-shed template);
//     the floor doubles per escalation from `floor_start` to `floor_max`.
//   * StreamShed — whole channels are dropped at ingest, lowest mean byte
//     value first, one more channel per escalation.
//
// Escalation fires after `escalate_after` consecutive pressured steps;
// de-escalation descends one rung after `deescalate_after` consecutive
// healthy steps. Both streaks reset on any opposite step, so the ladder
// never flaps on mixed signals.

#pragma once

#include <cstdint>

#include "core/types.h"

namespace rtsmooth::daemon {

enum class DegradationLevel : std::int32_t {
  Normal = 0,
  AdmissionControl = 1,
  ValueFloor = 2,
  StreamShed = 3,
};

const char* to_string(DegradationLevel level);

struct LadderConfig {
  bool enabled = true;
  Time escalate_after = 256;
  Time deescalate_after = 2048;
  double floor_start = 1.0;
  double floor_max = 8.0;
  /// Channels StreamShed may drop (keep at least one serving); the daemon
  /// caps this at channels - 1.
  std::int32_t max_shed_channels = 1;
};

class DegradationLadder {
 public:
  explicit DegradationLadder(LadderConfig config);

  /// Feed one step's pressure verdict (Watchdog::Pressure::any()).
  void update(bool pressured);

  DegradationLevel level() const;
  /// Value floor for the current rung; 0 below the ValueFloor rungs.
  double value_floor() const;
  /// Channels to shed at ingest; 0 below the StreamShed rungs.
  std::int32_t shed_channels() const;
  bool admission_control() const {
    return rung_ >= 1;
  }

  std::int32_t rung() const { return rung_; }
  std::int64_t escalations() const { return escalations_; }
  std::int64_t deescalations() const { return deescalations_; }

 private:
  std::int32_t max_rung() const {
    return 1 + floor_rungs_ + config_.max_shed_channels;
  }

  LadderConfig config_;
  std::int32_t floor_rungs_ = 1;  ///< ValueFloor rungs: floor_start..floor_max
  std::int32_t rung_ = 0;
  Time pressured_streak_ = 0;
  Time healthy_streak_ = 0;
  std::int64_t escalations_ = 0;
  std::int64_t deescalations_ = 0;
};

}  // namespace rtsmooth::daemon
