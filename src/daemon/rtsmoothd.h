// rtsmoothd: the long-running serving daemon (DESIGN.md Sect. 13).
//
// One Daemon owns a FrameSource, a LiveEngine, a Watchdog, a
// DegradationLadder, a Registry and a FlightRecorder, and runs the serving
// loop: poll (with retry/backoff on ingest stalls) -> ladder-filter ->
// engine step -> watchdog -> ladder update. It supports:
//
//   * graceful reconfiguration — schedule_reconfig(at, plan) drains the
//     current engine to quiescence (bounded by a drain ceiling), validates
//     the new plan, logs which Sect. 3.3 resource-waste case a mismatched
//     B != R*D plan lands in, and rebuilds the engine. Frames polled while
//     draining are deferred in ingest order and replayed into the new
//     engine at up to two groups per step, so a reconfig never reorders or
//     drops ingest and the deferral backlog decays right after the drain.
//   * overload degradation — the ladder's rungs map to admission control,
//     value-floor shedding, and whole-channel shedding at ingest.
//   * clean shutdown — request_stop() (the installed SIGTERM/SIGINT
//     handlers call it) finishes the current step, drains in-flight pieces,
//     folds everything into the final report, writes the rtsmooth-soak-v1
//     snapshot plus every captured incident, and serve() returns 0.
//   * live introspection — with stats_socket_path set, the daemon runs an
//     obs::StatsServer on a unix socket serving the same rtsmooth-soak-v1
//     document as /json and the registry as Prometheus text on /metrics.
//     The payload is rebuilt at publish cadence (startup, every
//     stats_publish_every steps, SIGHUP, shutdown) and swapped in with one
//     atomic pointer store, so scrapers never touch the serving loop. The
//     shutdown publish and the shutdown snapshot file are the *same*
//     string, byte for byte. SIGHUP (request_snapshot()) forces a snapshot
//     write plus a publish at the next step boundary without stopping.
//
// The daemon-level ledger extends the engine's conservation invariant to
// ingest: polled == admitted + budget_refused + slot_refused +
// channel_shed + unserved (deferred frames a shutdown never admitted).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "daemon/degradation.h"
#include "daemon/frame_source.h"
#include "daemon/live_engine.h"
#include "daemon/watchdog.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/stats_server.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "util/ring_buffer.h"

namespace rtsmooth::daemon {

/// Sect. 3.3's case analysis of a provisioning (B_s, B_c, R, D) against the
/// balanced point B = R*D, reported when a reconfiguration lands off it.
enum class PlanCase {
  Balanced,             ///< B_s == B_c == R*D: client-transparent (Thm. 3.5)
  ServerBufferDeficit,  ///< B_s < R*D: forced server drops under full load
  ServerBufferExcess,   ///< B_s > R*D: buffer the delay budget cannot use
  ClientBufferDeficit,  ///< B_c < R*D: client evictions under full load
  ClientBufferExcess,   ///< B_c > R*D: client buffer that never fills
  BufferMismatch,       ///< B_s != B_c: the smaller bound dominates
};

const char* to_string(PlanCase c);

/// Appends every applicable case (Balanced alone when the plan is balanced).
void classify_plan(const EngineConfig& config, std::vector<PlanCase>& out);

/// A reconfiguration target: the full new provisioning. An empty policy
/// keeps the current one.
struct EnginePlan {
  Bytes server_buffer = 1;
  Bytes client_buffer = 1;
  Bytes rate = 1;
  Time smoothing_delay = 1;
  Time link_delay = 1;
  std::string policy;
};

/// Retry/backoff policy for ingest stalls (PollStatus::Stalled). Within one
/// serving step the source is re-polled up to `max_retries` times with
/// exponentially growing sleeps; a step that stays empty is served anyway
/// (the stream pauses, the pipeline keeps draining). `stall_timeout_steps`
/// consecutive fully-stalled steps declare the source dead (treated as
/// End); 0 waits forever.
struct IngestConfig {
  std::int32_t max_retries = 3;
  std::int64_t retry_sleep_us = 100;
  std::int64_t retry_sleep_max_us = 10000;
  Time stall_timeout_steps = 0;
};

struct DaemonOptions {
  EngineConfig engine;
  IngestConfig ingest;
  SloConfig slo;
  LadderConfig ladder;
  obs::FlightRecorderConfig recorder{};
  /// Serving steps before a natural stop; 0 = until the source ends or
  /// request_stop().
  Time max_steps = 0;
  /// Drain ceiling per reconfiguration or shutdown; steps beyond it move
  /// what is still owed to residual (LiveEngine::abort_residual). 0 derives
  /// a generous default from the provisioning.
  Time max_drain_steps = 0;
  /// Write the snapshot every N steps (atomically, tmp+rename); 0 = only at
  /// shutdown.
  Time snapshot_every = 0;
  std::string snapshot_path;  ///< empty = no snapshot file
  std::string incident_dir;   ///< empty = keep incidents in memory only
  /// Unix-socket live stats endpoint (DESIGN.md Sect. 15); empty = none.
  /// The Daemon ctor validates the path (throws std::invalid_argument);
  /// serve() binds it and the endpoint stays up — serving the final,
  /// file-identical snapshot — until the Daemon is destroyed.
  std::string stats_socket_path;
  /// Republish the endpoint payload every N serving steps; 0 publishes
  /// only at startup, on SIGHUP, and at shutdown.
  Time stats_publish_every = 0;
  /// Rolling registry timeline (DESIGN.md Sect. 16): with
  /// timeline.slot_steps > 0 the daemon samples the registry every
  /// slot_steps serving steps, feeds burn-rate verdicts to the watchdog,
  /// serves the rtsmooth-series-v1 document on /series, and embeds the
  /// final timeline in the terminal snapshot. Disabled (the default) the
  /// serving loop pays one null check per step and nothing else.
  obs::TimelineConfig timeline;
  std::ostream* log = nullptr;  ///< reconfig/SLO event log; null = silent
};

/// The stock burn budgets over the daemon's own counters: `stall`
/// (degraded playouts / playouts, 5%), `deadline_miss` (late bytes /
/// delivered bytes, 1%) and `shed` (refused + shed bytes / polled bytes,
/// 5%). The defaults soak_driver installs with --series-every; callers can
/// append or replace freely.
std::vector<obs::BurnBudget> default_slo_budgets();

class Daemon {
 public:
  using LinkFactory =
      std::function<std::unique_ptr<Link>(const EngineConfig&)>;

  /// `link_factory` builds the link for every engine (initial and after
  /// each reconfiguration); null uses the lossless default. Throws
  /// std::invalid_argument on an invalid initial engine config.
  Daemon(DaemonOptions options, std::unique_ptr<FrameSource> source,
         LinkFactory link_factory = {});

  /// Runs the serving loop until max_steps, source end, or request_stop();
  /// then drains, writes outputs, and returns 0. Returns 1 only if the
  /// final ledger fails to conserve (an accounting bug, never load).
  int serve();

  /// Async-signal-safe stop request; the loop notices at the next step
  /// boundary. install_signal_handlers() routes SIGTERM/SIGINT here.
  void request_stop(int signum) {
    stop_signal_.store(signum, std::memory_order_relaxed);
  }
  int stop_signal() const {
    return stop_signal_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe "snapshot now" request (the installed SIGHUP
  /// handler calls it): at the next step boundary the loop writes the
  /// snapshot file and republishes the stats endpoint, then keeps serving.
  void request_snapshot() {
    hup_requested_.store(true, std::memory_order_relaxed);
  }

  /// Schedules a drain-and-replan at global step `at_step` (requests are
  /// served in time order; one at a time — a request due while another
  /// drain is in progress waits for it).
  void schedule_reconfig(Time at_step, EnginePlan plan);

  /// Cycles through `plans` forever, one drain-and-replan every `every`
  /// serving steps — the endless-soak counterpart of schedule_reconfig,
  /// which needs a horizon to enumerate against. The next cycle fires
  /// `every` steps after the previous one *began* (drains do not compress
  /// the period). Throws std::invalid_argument on every < 1 / empty plans.
  void schedule_reconfig_cycle(Time every, std::vector<EnginePlan> plans);

  // -- observers (valid during and after serve()) --------------------------
  Time steps() const { return steps_; }
  const LiveEngine& engine() const { return *engine_; }
  const obs::Registry& registry() const { return registry_; }
  const obs::FlightRecorder& recorder() const { return recorder_; }
  const Watchdog& watchdog() const { return watchdog_; }
  const DegradationLadder& ladder() const { return ladder_; }
  /// Cumulative report over every engine epoch plus the live one.
  SimReport total_report() const;
  /// The rtsmooth-soak-v1 document (also what snapshot_path receives).
  obs::Json snapshot() const;
  /// The stats endpoint, or null when stats_socket_path is empty. Running
  /// from serve() until the Daemon is destroyed.
  const obs::StatsServer* stats_server() const { return stats_.get(); }
  /// The rolling timeline, or null when options.timeline is disabled.
  const obs::Timeline* timeline() const { return timeline_.get(); }

  std::int64_t reconfigs_applied() const { return reconfigs_applied_; }
  std::int64_t reconfigs_rejected() const { return reconfigs_rejected_; }
  std::int64_t incidents_written() const { return incidents_written_; }
  std::int64_t polled_frames() const { return polled_frames_; }
  Bytes polled_bytes() const { return polled_bytes_; }

  /// polled == admitted + budget_refused + slot_refused + channel_shed +
  /// unserved, in bytes.
  bool ingest_ledger_conserves() const;

 private:
  struct Group {
    Time orig = 0;  ///< global step the frames were polled at
    std::vector<IngestFrame> frames;
  };
  struct ReconfigRequest {
    Time at_step = 0;
    EnginePlan plan;
  };
  struct ChannelStats {
    Bytes offered_bytes = 0;
    double offered_weight = 0.0;
    std::int64_t frames = 0;
  };

  std::unique_ptr<LiveEngine> make_engine(const EngineConfig& config);
  Time drain_ceiling() const;
  void poll_frames();
  void serve_step();
  void drain_step();
  void begin_reconfig();
  void finish_reconfig();
  void apply_ladder(Group& group);
  void apply_admission_budget();
  void observe(const StepStats& stats);
  void shutdown_drain();
  void write_outputs();
  /// snapshot().dump() + '\n' — the exact bytes the snapshot file and the
  /// endpoint's /json route serve.
  std::string snapshot_text() const;
  /// timeline()->to_json().dump() + '\n', or empty without a timeline —
  /// the exact bytes the endpoint's /series route serves.
  std::string series_text() const;
  /// Samples the timeline at step `steps_` and feeds each budget's burn
  /// verdict to the watchdog. No-op without a timeline.
  void sample_timeline();
  void write_snapshot() const;
  void write_snapshot(const std::string& text) const;
  /// Rebuilds {JSON, Prometheus} and swaps them into the endpoint. No-op
  /// without a stats server.
  void publish_stats();
  std::vector<IngestFrame> take_group_buffer();
  void recycle_group_buffer(std::vector<IngestFrame> buf);
  EngineConfig plan_config(const EnginePlan& plan) const;

  DaemonOptions options_;
  std::unique_ptr<FrameSource> source_;
  LinkFactory link_factory_;
  obs::Registry registry_;
  obs::FlightRecorder recorder_;
  std::unique_ptr<LiveEngine> engine_;
  Watchdog watchdog_;
  DegradationLadder ladder_;
  std::unique_ptr<obs::StatsServer> stats_;
  std::unique_ptr<obs::Timeline> timeline_;
  std::atomic<int> stop_signal_{0};
  std::atomic<bool> hup_requested_{false};

  Time steps_ = 0;       ///< global serving steps completed
  Time epoch_base_ = 0;  ///< global step mapped to the engine's local 0
  bool served_ = false;
  bool source_ended_ = false;
  bool ingest_timed_out_ = false;
  bool draining_ = false;
  bool forced_residual_ = false;
  EnginePlan pending_plan_;
  Time current_drain_steps_ = 0;
  std::deque<ReconfigRequest> reconfig_queue_;
  Time cycle_every_ = 0;  ///< 0 = no cycling program installed
  Time cycle_next_ = 0;
  std::size_t cycle_index_ = 0;
  std::vector<EnginePlan> cycle_plans_;
  /// Deferred ingest groups (ring, not deque: a deque's block allocator
  /// churns the heap every few steps of steady-state push/pop, which the
  /// soak alloc guard forbids).
  RingBuffer<Group> pending_;
  std::vector<std::vector<IngestFrame>> group_pool_;
  std::vector<IngestFrame> admit_buf_;
  std::vector<PlanCase> cases_buf_;
  std::vector<ChannelStats> channel_stats_;
  std::vector<std::int32_t> shed_rank_;  ///< channels by ascending mean value
  std::int32_t shed_count_ = 0;

  // Ingest + ladder ledger (bytes / frames / weight).
  std::int64_t polled_frames_ = 0;
  Bytes polled_bytes_ = 0;
  std::int64_t stalled_polls_ = 0;
  std::int64_t ingest_retries_ = 0;
  Time consecutive_stalled_ = 0;
  Bytes admitted_bytes_ = 0;
  std::int64_t admitted_frames_ = 0;
  Bytes budget_refused_bytes_ = 0;
  std::int64_t budget_refused_frames_ = 0;
  Bytes slot_refused_bytes_ = 0;
  std::int64_t slot_refused_frames_ = 0;
  Bytes channel_shed_bytes_ = 0;
  std::int64_t channel_shed_frames_ = 0;
  Bytes unserved_bytes_ = 0;
  std::int64_t unserved_frames_ = 0;
  Bytes floor_shed_bytes_ = 0;
  std::int64_t playouts_ = 0;
  std::int64_t degraded_playouts_ = 0;

  // Ingest-health instruments resolved once at construction, so they exist
  // (at zero) in every registry snapshot and the serving loop never does a
  // name lookup.
  obs::Counter* ctr_stalled_polls_ = nullptr;
  obs::Counter* ctr_ingest_retries_ = nullptr;
  obs::Counter* ctr_sighup_ = nullptr;
  // Ledger mirrors: the member tallies above, duplicated as registry
  // counters so the timeline can delta-diff them (burn budgets reference
  // counter names, and member fields are invisible to the registry).
  obs::Counter* ctr_polled_bytes_ = nullptr;
  obs::Counter* ctr_playouts_ = nullptr;
  obs::Counter* ctr_degraded_playouts_ = nullptr;
  obs::Counter* ctr_slot_refused_bytes_ = nullptr;
  obs::Counter* ctr_floor_shed_bytes_ = nullptr;
  obs::Counter* ctr_channel_shed_bytes_ = nullptr;
  obs::Counter* ctr_budget_refused_bytes_ = nullptr;
  obs::Gauge* gauge_truncated_tail_ = nullptr;  ///< wire-source partial tail
  obs::Gauge* gauge_rejected_records_ = nullptr;

  SimReport total_report_;  ///< folded reports of completed engine epochs
  std::int64_t reconfigs_applied_ = 0;
  std::int64_t reconfigs_rejected_ = 0;
  Time reconfig_drain_steps_ = 0;
  Time max_reconfig_lag_ = 0;
  std::int64_t incidents_written_ = 0;
};

/// Installs SIGTERM/SIGINT handlers that call daemon.request_stop() and a
/// SIGHUP handler that calls daemon.request_snapshot() (write + republish
/// without stopping). The handlers only store into atomics
/// (async-signal-safe); at most one daemon can be installed at a time
/// (re-install for a new one).
void install_signal_handlers(Daemon& daemon);

}  // namespace rtsmooth::daemon
