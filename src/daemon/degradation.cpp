#include "daemon/degradation.h"

#include "util/assert.h"

namespace rtsmooth::daemon {

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::Normal: return "normal";
    case DegradationLevel::AdmissionControl: return "admission_control";
    case DegradationLevel::ValueFloor: return "value_floor";
    case DegradationLevel::StreamShed: return "stream_shed";
  }
  return "unknown";
}

DegradationLadder::DegradationLadder(LadderConfig config) : config_(config) {
  RTS_EXPECTS(config_.escalate_after >= 1);
  RTS_EXPECTS(config_.deescalate_after >= 1);
  RTS_EXPECTS(config_.floor_start > 0.0);
  RTS_EXPECTS(config_.floor_max >= config_.floor_start);
  RTS_EXPECTS(config_.max_shed_channels >= 0);
  floor_rungs_ = 1;
  for (double f = config_.floor_start; f * 2.0 <= config_.floor_max;
       f *= 2.0) {
    ++floor_rungs_;
  }
}

void DegradationLadder::update(bool pressured) {
  if (!config_.enabled) return;
  if (pressured) {
    healthy_streak_ = 0;
    if (++pressured_streak_ >= config_.escalate_after && rung_ < max_rung()) {
      ++rung_;
      ++escalations_;
      pressured_streak_ = 0;
    }
  } else {
    pressured_streak_ = 0;
    if (++healthy_streak_ >= config_.deescalate_after && rung_ > 0) {
      --rung_;
      ++deescalations_;
      healthy_streak_ = 0;
    }
  }
}

DegradationLevel DegradationLadder::level() const {
  if (rung_ == 0) return DegradationLevel::Normal;
  if (rung_ == 1) return DegradationLevel::AdmissionControl;
  if (rung_ <= 1 + floor_rungs_) return DegradationLevel::ValueFloor;
  return DegradationLevel::StreamShed;
}

double DegradationLadder::value_floor() const {
  if (rung_ < 2) return 0.0;
  const std::int32_t steps =
      rung_ - 2 < floor_rungs_ - 1 ? rung_ - 2 : floor_rungs_ - 1;
  double floor = config_.floor_start;
  for (std::int32_t i = 0; i < steps; ++i) floor *= 2.0;
  return floor < config_.floor_max ? floor : config_.floor_max;
}

std::int32_t DegradationLadder::shed_channels() const {
  const std::int32_t over = rung_ - (1 + floor_rungs_);
  if (over <= 0) return 0;
  return over < config_.max_shed_channels ? over : config_.max_shed_channels;
}

}  // namespace rtsmooth::daemon
