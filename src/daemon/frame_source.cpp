#include "daemon/frame_source.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "util/assert.h"

namespace rtsmooth::daemon {

// ---------------------------------------------------------------------------
// GeneratorSource

GeneratorSource::GeneratorSource(GeneratorConfig config)
    : config_(std::move(config)) {
  RTS_EXPECTS(config_.channels >= 1);
  RTS_EXPECTS(!config_.gop_pattern.empty());
  RTS_EXPECTS(config_.min_frame_bytes >= 1);
  RTS_EXPECTS(config_.min_frame_bytes <= config_.mean_frame_bytes);
  RTS_EXPECTS(config_.mean_frame_bytes <= config_.max_frame_bytes);

  // Per-type relative sizes follow the classic MPEG shape (I frames largest,
  // B frames smallest); scale them so the pattern-weighted mean equals
  // mean_frame_bytes.
  constexpr double kRel[4] = {4.0, 2.2, 1.0, 1.0};  // I, P, B, Other
  double rel_sum = 0.0;
  for (const char c : config_.gop_pattern) {
    rel_sum += kRel[static_cast<std::size_t>(frame_type_from_char(c))];
  }
  const double base = static_cast<double>(config_.mean_frame_bytes) *
                      static_cast<double>(config_.gop_pattern.size()) /
                      rel_sum;
  for (std::size_t k = 0; k < 4; ++k) type_mean_[k] = base * kRel[k];

  Rng root(config_.seed);
  state_.reserve(static_cast<std::size_t>(config_.channels));
  for (std::int32_t c = 0; c < config_.channels; ++c) {
    state_.push_back(
        ChannelState{root.split(static_cast<std::uint64_t>(c)), 0});
  }
}

PollStatus GeneratorSource::poll(Time /*t*/, std::vector<IngestFrame>& out) {
  bool all_done = true;
  const double sigma = config_.size_sigma;
  // E[lognormal(-sigma^2/2, sigma)] == 1, so the multiplier is mean-neutral.
  const double mu = -0.5 * sigma * sigma;
  for (std::int32_t c = 0; c < config_.channels; ++c) {
    ChannelState& ch = state_[static_cast<std::size_t>(c)];
    if (config_.frames_per_channel > 0 &&
        ch.emitted >= config_.frames_per_channel) {
      continue;
    }
    all_done = false;
    const std::size_t pos = static_cast<std::size_t>(ch.emitted) %
                            config_.gop_pattern.size();
    const FrameType type = frame_type_from_char(config_.gop_pattern[pos]);
    const double mean = type_mean_[static_cast<std::size_t>(type)];
    const double raw = mean * ch.rng.lognormal(mu, sigma);
    const Bytes size =
        std::clamp(static_cast<Bytes>(std::llround(raw)),
                   config_.min_frame_bytes, config_.max_frame_bytes);
    out.push_back(IngestFrame{c, type, size});
    ++ch.emitted;
  }
  return all_done ? PollStatus::End : PollStatus::Ready;
}

// ---------------------------------------------------------------------------
// ReplaySource

ReplaySource::ReplaySource(trace::FrameSequence frames, ReplayConfig config)
    : frames_(std::move(frames)), config_(config) {
  RTS_EXPECTS(!frames_.empty());
  RTS_EXPECTS(config_.channel >= 0);
}

PollStatus ReplaySource::poll(Time /*t*/, std::vector<IngestFrame>& out) {
  if (pos_ >= frames_.size()) {
    if (!config_.loop) return PollStatus::End;
    pos_ = 0;
  }
  const trace::Frame& f = frames_[pos_++];
  out.push_back(IngestFrame{config_.channel, f.type, f.size});
  return PollStatus::Ready;
}

// ---------------------------------------------------------------------------
// PipeSource

namespace {

void put_u32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>((v >> 8) & 0xFF);
  p[2] = static_cast<unsigned char>((v >> 16) & 0xFF);
  p[3] = static_cast<unsigned char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(unsigned char* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

void WireFrame::encode(const IngestFrame& frame, unsigned char* buf) {
  put_u32(buf, kMagic);
  buf[4] = static_cast<unsigned char>(frame.type);
  buf[5] = 0;
  buf[6] = static_cast<unsigned char>(frame.channel & 0xFF);
  buf[7] = static_cast<unsigned char>((frame.channel >> 8) & 0xFF);
  put_u64(buf + 8, static_cast<std::uint64_t>(frame.size));
}

bool WireFrame::decode(const unsigned char* buf, IngestFrame& frame) {
  if (get_u32(buf) != kMagic) return false;
  if (buf[4] > static_cast<unsigned char>(FrameType::Other)) return false;
  frame.type = static_cast<FrameType>(buf[4]);
  frame.channel = static_cast<std::int32_t>(buf[6]) |
                  (static_cast<std::int32_t>(buf[7]) << 8);
  const std::uint64_t size = get_u64(buf + 8);
  if (size == 0 || size > static_cast<std::uint64_t>(1) << 40) return false;
  frame.size = static_cast<Bytes>(size);
  return true;
}

PipeSource::PipeSource(int fd, std::int32_t channels, PipeConfig config)
    : fd_(fd), channels_(channels), config_(config) {
  RTS_EXPECTS(fd_ >= 0);
  RTS_EXPECTS(channels_ >= 1);
  RTS_EXPECTS(config_.ring_frames >= 1);
  RTS_EXPECTS(config_.max_frames_per_poll >= 1);
  ring_.resize(config_.ring_frames * WireFrame::kWireSize);
}

PipeSource::~PipeSource() {
  if (config_.own_fd && fd_ >= 0) ::close(fd_);
}

PollStatus PipeSource::poll(Time /*t*/, std::vector<IngestFrame>& out) {
  // Top the ring up from the fd (non-blocking; EAGAIN means "nothing yet").
  if (!eof_) {
    while (fill_ < ring_.size()) {
      const ssize_t n = ::read(fd_, ring_.data() + fill_, ring_.size() - fill_);
      if (n > 0) {
        fill_ += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        eof_ = true;
      } else if (errno == EINTR) {
        continue;
      }
      // EAGAIN/EWOULDBLOCK (or a real error, treated as a stall and retried
      // by the daemon's backoff machinery) — stop reading this poll.
      break;
    }
  }

  // Consume complete records from the front.
  std::size_t consumed = 0;
  std::size_t emitted = 0;
  while (emitted < config_.max_frames_per_poll &&
         fill_ - consumed >= WireFrame::kWireSize) {
    IngestFrame frame;
    if (WireFrame::decode(ring_.data() + consumed, frame)) {
      out.push_back(frame);
      ++emitted;
    } else {
      ++rejected_;
    }
    consumed += WireFrame::kWireSize;
  }
  if (consumed > 0) {
    std::memmove(ring_.data(), ring_.data() + consumed, fill_ - consumed);
    fill_ -= consumed;
  }

  if (emitted > 0) return PollStatus::Ready;
  if (eof_) {
    truncated_tail_ = fill_;
    return PollStatus::End;
  }
  return PollStatus::Stalled;
}

bool PipeSource::write_frame(int fd, const IngestFrame& frame) {
  unsigned char buf[WireFrame::kWireSize];
  WireFrame::encode(frame, buf);
  std::size_t off = 0;
  while (off < sizeof(buf)) {
    const ssize_t n = ::write(fd, buf + off, sizeof(buf) - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace rtsmooth::daemon
