#include "trace/trace_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rtsmooth::trace {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& line) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line_no) + ": '" + line + "'");
}

bool is_integer(const std::string& tok) {
  if (tok.empty()) return false;
  for (char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

FrameSequence read_trace(std::istream& in) {
  FrameSequence frames;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::vector<std::string> toks;
    for (std::string t; tokens >> t;) toks.push_back(t);
    if (toks.empty()) continue;

    Frame f;
    std::string size_tok;
    if (toks.size() == 1) {
      size_tok = toks[0];
    } else if (toks.size() == 2) {
      if (toks[0].size() != 1 ||
          frame_type_from_char(toks[0][0]) == FrameType::Other) {
        fail(line_no, line);
      }
      f.type = frame_type_from_char(toks[0][0]);
      size_tok = toks[1];
    } else if (toks.size() == 3) {
      if (!is_integer(toks[0]) || toks[1].size() != 1) fail(line_no, line);
      f.type = frame_type_from_char(toks[1][0]);
      size_tok = toks[2];
    } else {
      fail(line_no, line);
    }
    if (!is_integer(size_tok)) fail(line_no, line);
    f.size = std::stoll(size_tok);
    if (f.size <= 0) fail(line_no, line);
    frames.push_back(f);
  }
  return frames;
}

FrameSequence read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const FrameSequence& frames) {
  for (const Frame& f : frames) {
    out << to_char(f.type) << ' ' << f.size << '\n';
  }
}

void write_trace_file(const std::string& path, const FrameSequence& frames) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(out, frames);
}

}  // namespace rtsmooth::trace
