// Cutting frames into slices (paper Sect. 2.1: slices are the unit of
// dropping, and the experiments consider "two extremes for the slice size:
// each byte is an individual slice; and ... each frame is an individual
// slice", Sect. 5). FixedPacket adds the practically common middle ground
// (e.g. 188-byte MPEG transport-stream packets).

#pragma once

#include <span>

#include "core/slice.h"
#include "trace/frame.h"
#include "trace/value_model.h"

namespace rtsmooth::trace {

enum class Slicing {
  ByteSlices,   ///< every byte an independent slice (Sect. 5.1)
  WholeFrame,   ///< one slice per frame (Sect. 5.3)
  FixedPacket,  ///< packets of a fixed byte size; a frame's last packet may
                ///< be shorter
};

/// Builds the input stream for a frame sequence: frame k arrives at step k.
/// Slice weights come from `values` (weight = byte value * slice size).
/// `packet_size` only applies to FixedPacket.
Stream slice_frames(std::span<const Frame> frames, const ValueModel& values,
                    Slicing slicing, Bytes packet_size = 188);

/// Like slice_frames() but with an explicit byte value per frame (one entry
/// per frame; see trace/dependency.h for a generator).
Stream slice_frames_with_values(std::span<const Frame> frames,
                                std::span<const double> byte_values,
                                Slicing slicing, Bytes packet_size = 188);

}  // namespace rtsmooth::trace
