// MPEG group-of-pictures patterns. A GOP pattern is a string over {I,P,B}
// starting with 'I' that the encoder repeats cyclically; it fixes the
// relative frequencies of the three frame types.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace rtsmooth::trace {

class GopPattern {
 public:
  /// Parses e.g. "IBBPBBPBBPBB". Throws std::invalid_argument if empty, if
  /// it does not start with 'I', or if it contains other characters.
  explicit GopPattern(std::string_view pattern);

  /// Frame type at position k of the (cyclically repeated) pattern.
  FrameType type_at(std::size_t k) const {
    return types_[k % types_.size()];
  }

  std::size_t length() const { return types_.size(); }
  const std::string& text() const { return text_; }

  /// Fraction of the pattern that is the given type.
  double frequency(FrameType t) const;

  /// The default used by the synthetic clips: 1 I, 4 P, 8 B per 13 frames
  /// (7.7% / 30.8% / 61.5%), matching the paper's reported ~8% / 31% / 61%.
  static GopPattern paper_default();

 private:
  std::string text_;
  std::vector<FrameType> types_;
};

}  // namespace rtsmooth::trace
