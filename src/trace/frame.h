// Video frames as emitted by the source: one frame per time slot (paper
// Sect. 2.1). A frame is later cut into slices by a Slicer; the trace layer
// deals only in (type, size) pairs, the format public MPEG frame-size traces
// use.

#pragma once

#include <span>
#include <vector>

#include "core/types.h"

namespace rtsmooth::trace {

struct Frame {
  FrameType type = FrameType::Other;
  Bytes size = 0;  ///< encoded frame size in bytes

  bool operator==(const Frame&) const = default;
};

using FrameSequence = std::vector<Frame>;

/// Aggregate statistics of a frame sequence, matching the figures the paper
/// reports for its clips (Sect. 5: "average frame size is about 38 KBytes,
/// maximum ... about 120 KBytes; frequencies of I, P, B frames are about
/// 8%, 31%, 61%").
struct TraceStats {
  double mean_frame_bytes = 0.0;
  Bytes max_frame_bytes = 0;
  Bytes total_bytes = 0;
  std::size_t frames = 0;
  double frequency_i = 0.0;
  double frequency_p = 0.0;
  double frequency_b = 0.0;
  /// Mean size per type; 0 when the type does not occur.
  double mean_i = 0.0;
  double mean_p = 0.0;
  double mean_b = 0.0;
};

inline TraceStats compute_stats(std::span<const Frame> frames) {
  TraceStats s;
  s.frames = frames.size();
  std::size_t count[3] = {0, 0, 0};
  double sum[3] = {0.0, 0.0, 0.0};
  for (const Frame& f : frames) {
    s.total_bytes += f.size;
    if (f.size > s.max_frame_bytes) s.max_frame_bytes = f.size;
    const auto k = static_cast<std::size_t>(f.type);
    if (k < 3) {
      ++count[k];
      sum[k] += static_cast<double>(f.size);
    }
  }
  if (s.frames == 0) return s;
  const auto n = static_cast<double>(s.frames);
  s.mean_frame_bytes = static_cast<double>(s.total_bytes) / n;
  s.frequency_i = static_cast<double>(count[0]) / n;
  s.frequency_p = static_cast<double>(count[1]) / n;
  s.frequency_b = static_cast<double>(count[2]) / n;
  s.mean_i = count[0] ? sum[0] / static_cast<double>(count[0]) : 0.0;
  s.mean_p = count[1] ? sum[1] / static_cast<double>(count[1]) : 0.0;
  s.mean_b = count[2] ? sum[2] / static_cast<double>(count[2]) : 0.0;
  return s;
}

}  // namespace rtsmooth::trace
