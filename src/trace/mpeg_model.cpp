#include "trace/mpeg_model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace rtsmooth::trace {

MpegTraceModel::MpegTraceModel(MpegModelConfig config, std::uint64_t seed)
    : config_(std::move(config)), gop_(config_.gop_pattern), rng_(seed) {
  RTS_EXPECTS(config_.mean_frame_bytes > 0);
  RTS_EXPECTS(config_.max_frame_bytes >= config_.min_frame_bytes);
  RTS_EXPECTS(config_.min_frame_bytes >= 1);
  RTS_EXPECTS(config_.i_to_b_ratio >= 1.0);
  RTS_EXPECTS(config_.p_to_b_ratio >= 1.0);
  RTS_EXPECTS(config_.scene_rho >= 0.0 && config_.scene_rho < 1.0);
  // Calibrate the B-frame mean so the mixture hits the overall target:
  // mean = mB * (fI*rI + fP*rP + fB).
  const double mix = gop_.frequency(FrameType::I) * config_.i_to_b_ratio +
                     gop_.frequency(FrameType::P) * config_.p_to_b_ratio +
                     gop_.frequency(FrameType::B);
  mean_b_bytes_ = config_.mean_frame_bytes / mix;
  // Start the scene level in its stationary distribution so short clips are
  // not biased towards level 0.
  scene_level_ = rng_.normal(0.0, config_.scene_sigma);
}

FrameSequence MpegTraceModel::generate(std::size_t n) {
  FrameSequence out;
  out.reserve(n);
  // Per-step innovation keeping the AR(1) stationary at scene_sigma.
  const double innovation_sigma =
      config_.scene_sigma *
      std::sqrt(1.0 - config_.scene_rho * config_.scene_rho);
  for (std::size_t k = 0; k < n; ++k, ++position_) {
    scene_level_ = config_.scene_rho * scene_level_ +
                   rng_.normal(0.0, innovation_sigma);
    const FrameType type = gop_.type_at(position_);
    double type_mean = mean_b_bytes_;
    if (type == FrameType::I) type_mean *= config_.i_to_b_ratio;
    if (type == FrameType::P) type_mean *= config_.p_to_b_ratio;
    // Both lognormal factors are mean-corrected (exp(-sigma^2/2)) so the
    // modulated size process keeps the calibrated mean.
    const double scene_factor =
        std::exp(scene_level_ - 0.5 * config_.scene_sigma * config_.scene_sigma);
    const double noise_factor =
        rng_.lognormal(-0.5 * config_.size_sigma * config_.size_sigma,
                       config_.size_sigma);
    const double raw = type_mean * scene_factor * noise_factor;
    const Bytes size = std::clamp(static_cast<Bytes>(std::llround(raw)),
                                  config_.min_frame_bytes,
                                  config_.max_frame_bytes);
    out.push_back(Frame{.type = type, .size = size});
  }
  return out;
}

}  // namespace rtsmooth::trace
