// Synthetic VBR MPEG source.
//
// The paper's experiments use MPEG-1 clips from the CNN video archive, a
// source that no longer exists; this model is the documented substitution
// (see DESIGN.md). It generates a GOP-structured frame-size process with the
// two properties the paper's results hinge on:
//
//   1. the reported aggregate statistics — mean frame ~38 KB, max ~120 KB,
//      I:P:B frequencies ~8:31:61 — are reproduced, and
//   2. sizes are *bursty*: a slowly varying scene level (AR(1) in log space)
//      modulates lognormal per-type sizes, so the valuable I-frame bytes
//      arrive in large bursts. That burstiness is exactly what separates
//      Greedy from Tail-Drop in Sect. 5.1.

#pragma once

#include <cstdint>

#include "trace/frame.h"
#include "trace/gop.h"
#include "util/rng.h"

namespace rtsmooth::trace {

struct MpegModelConfig {
  std::string gop_pattern = "IBBPBBPBBPBBP";
  double mean_frame_bytes = 38.0 * 1024;  ///< calibration target, overall
  Bytes max_frame_bytes = 120 * 1024;     ///< hard cap (encoder VBV-style)
  Bytes min_frame_bytes = 256;
  double i_to_b_ratio = 4.0;   ///< mean I size / mean B size
  double p_to_b_ratio = 2.2;   ///< mean P size / mean B size
  double size_sigma = 0.22;    ///< per-frame lognormal sigma (log space)
  double scene_sigma = 0.30;   ///< stationary sigma of the scene level
  double scene_rho = 0.995;    ///< AR(1) pole; ~200-frame scene memory
};

class MpegTraceModel {
 public:
  MpegTraceModel(MpegModelConfig config, std::uint64_t seed);

  /// Generates `n` frames. Deterministic in (config, seed): repeated calls
  /// continue the same process.
  FrameSequence generate(std::size_t n);

  const MpegModelConfig& config() const { return config_; }

 private:
  MpegModelConfig config_;
  GopPattern gop_;
  Rng rng_;
  double scene_level_ = 0.0;  ///< current AR(1) state, log space
  std::size_t position_ = 0;  ///< frames generated so far
  double mean_b_bytes_ = 0.0; ///< calibrated mean B-frame size
};

}  // namespace rtsmooth::trace
