// ValueModel is fully inline; this translation unit exists so the build
// exposes a home for future non-inline members (e.g. file-driven custom
// models) without touching the build files.
#include "trace/value_model.h"
