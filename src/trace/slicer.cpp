#include "trace/slicer.h"

#include "util/assert.h"

namespace rtsmooth::trace {

Stream slice_frames_with_values(std::span<const Frame> frames,
                                std::span<const double> byte_values,
                                Slicing slicing, Bytes packet_size) {
  RTS_EXPECTS(packet_size >= 1);
  RTS_EXPECTS(byte_values.size() == frames.size());
  std::vector<SliceRun> runs;
  runs.reserve(frames.size());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const Frame& f = frames[k];
    RTS_EXPECTS(f.size >= 1);
    const double v = byte_values[k];
    RTS_EXPECTS(v >= 0.0);
    const auto arrival = static_cast<Time>(k);
    const auto frame_index = static_cast<std::int64_t>(k);
    switch (slicing) {
      case Slicing::ByteSlices:
        runs.push_back(SliceRun{.arrival = arrival,
                                .slice_size = 1,
                                .count = f.size,
                                .weight = v,
                                .frame_type = f.type,
                                .frame_index = frame_index});
        break;
      case Slicing::WholeFrame:
        runs.push_back(SliceRun{.arrival = arrival,
                                .slice_size = f.size,
                                .count = 1,
                                .weight = v * static_cast<Weight>(f.size),
                                .frame_type = f.type,
                                .frame_index = frame_index});
        break;
      case Slicing::FixedPacket: {
        const std::int64_t full = f.size / packet_size;
        const Bytes tail = f.size % packet_size;
        if (full > 0) {
          runs.push_back(
              SliceRun{.arrival = arrival,
                       .slice_size = packet_size,
                       .count = full,
                       .weight = v * static_cast<Weight>(packet_size),
                       .frame_type = f.type,
                       .frame_index = frame_index});
        }
        if (tail > 0) {
          runs.push_back(SliceRun{.arrival = arrival,
                                  .slice_size = tail,
                                  .count = 1,
                                  .weight = v * static_cast<Weight>(tail),
                                  .frame_type = f.type,
                                  .frame_index = frame_index});
        }
        break;
      }
    }
  }
  return Stream::from_runs(std::move(runs));
}

Stream slice_frames(std::span<const Frame> frames, const ValueModel& values,
                    Slicing slicing, Bytes packet_size) {
  std::vector<double> byte_values;
  byte_values.reserve(frames.size());
  for (const Frame& f : frames) byte_values.push_back(values.byte_value(f.type));
  return slice_frames_with_values(frames, byte_values, slicing, packet_size);
}

}  // namespace rtsmooth::trace
