// MPEG decode-dependency model.
//
// The paper's experiments score schedules by summed slice values, while
// noting (Sect. 2.1) that perceived fidelity "does not degrade linearly
// with the quantity of lost data". This module makes that concrete for
// MPEG GOP structure: a P frame needs its preceding reference (I or P)
// decodable, a B frame needs both its surrounding references (display
// order; coded-order reordering is abstracted away), an I frame needs
// nothing. A frame that arrives intact but whose references were dropped
// is *delivered garbage* — counted separately below.
//
// The dependency-aware value model prices every frame by the total bytes
// that become undecodable if it is lost, which is what a value function
// should approximate if decodability is the real objective; the
// abl_dependency bench measures how much it helps.

#pragma once

#include <span>
#include <vector>

#include "core/schedule.h"
#include "core/slice.h"
#include "trace/frame.h"
#include "trace/slicer.h"

namespace rtsmooth::trace {

/// Decodability outcome for one schedule of one clip.
struct DependencyReport {
  std::int64_t total_frames = 0;
  std::int64_t delivered_frames = 0;   ///< fully delivered (all slices played)
  std::int64_t decodable_frames = 0;   ///< delivered and references decodable
  std::int64_t garbage_frames = 0;     ///< delivered but undecodable
  Bytes total_bytes = 0;
  Bytes decodable_bytes = 0;           ///< goodput after dependency loss

  double decodable_fraction() const {
    return total_frames == 0
               ? 1.0
               : static_cast<double>(decodable_frames) /
                     static_cast<double>(total_frames);
  }
  double goodput_fraction() const {
    return total_bytes == 0
               ? 1.0
               : static_cast<double>(decodable_bytes) /
                     static_cast<double>(total_bytes);
  }
};

/// Per-frame delivered byte counts for a schedule, reconstructed from the
/// recorder (runs map to frames via SliceRun::frame_index).
std::vector<Bytes> delivered_bytes_per_frame(const Stream& stream,
                                             const ScheduleRecorder& rec,
                                             std::size_t frame_count);

/// Decodability of a clip given per-frame delivered bytes: a frame is
/// "delivered" when at least `delivery_threshold` of its bytes played, and
/// decodable when delivered and its references are decodable.
DependencyReport analyze_decodability(std::span<const Frame> frames,
                                      std::span<const Bytes> delivered,
                                      double delivery_threshold = 1.0);

/// Dependency-aware per-frame *byte values*: frame f is worth
/// (bytes made undecodable by losing f) / |f| — i.e. its own bytes plus all
/// transitively dependent bytes, normalized to a per-byte price. Use with
/// slice_frames_with_values() (declared in slicer.h).
std::vector<double> dependency_aware_values(std::span<const Frame> frames);

}  // namespace rtsmooth::trace
