// Named synthetic clips — stand-ins for the CNN-archive MPEG clips of the
// paper's Sect. 5 (see the substitution table in DESIGN.md). Each name maps
// to a fixed (config, seed) pair, so every test, example and bench in the
// repository sees bit-identical frames.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trace/frame.h"
#include "trace/mpeg_model.h"

namespace rtsmooth::trace {

/// Generates `frames` frames of the named clip. Known names:
///   "cnn-news"      — the paper-calibrated default (38 KB mean, 120 KB max,
///                     I:P:B ~ 8:31:61); used by all figure benches
///   "action"        — high-variance, fast scene changes (stress case)
///   "talking-head"  — low-variance, nearly CBR content
///   "smooth-cbr"    — exactly constant frame sizes (Sect. 3.3's "perfectly
///                     smooth" input; no I/P/B structure)
/// Throws std::invalid_argument for unknown names.
FrameSequence stock_clip(std::string_view name, std::size_t frames);

std::vector<std::string> stock_clip_names();

}  // namespace rtsmooth::trace
