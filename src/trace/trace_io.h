// Frame-trace file IO, in the de-facto text format of public MPEG frame-size
// traces (one frame per line). Lets users run the harness against real
// traces instead of the synthetic clips.
//
// Accepted line shapes (blank lines and '#' comments skipped):
//   "<size>"                  — size only, type recorded as Other
//   "<type> <size>"           — e.g. "I 38912"
//   "<index> <type> <size>"   — e.g. "42 P 17003"

#pragma once

#include <iosfwd>
#include <string>

#include "trace/frame.h"

namespace rtsmooth::trace {

/// Parses a trace from a stream. Throws std::runtime_error with a line
/// number on malformed input.
FrameSequence read_trace(std::istream& in);

/// Reads a trace file; throws std::runtime_error if it cannot be opened.
FrameSequence read_trace_file(const std::string& path);

/// Writes "<type> <size>" lines.
void write_trace(std::ostream& out, const FrameSequence& frames);
void write_trace_file(const std::string& path, const FrameSequence& frames);

}  // namespace rtsmooth::trace
