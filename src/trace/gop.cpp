#include "trace/gop.h"

#include <stdexcept>

namespace rtsmooth::trace {

GopPattern::GopPattern(std::string_view pattern) : text_(pattern) {
  if (pattern.empty()) throw std::invalid_argument("GOP pattern is empty");
  if (pattern.front() != 'I' && pattern.front() != 'i') {
    throw std::invalid_argument("GOP pattern must start with an I frame: " +
                                text_);
  }
  types_.reserve(pattern.size());
  for (char c : pattern) {
    const FrameType t = frame_type_from_char(c);
    if (t == FrameType::Other) {
      throw std::invalid_argument("GOP pattern contains non-IPB character: " +
                                  text_);
    }
    types_.push_back(t);
  }
}

double GopPattern::frequency(FrameType t) const {
  std::size_t n = 0;
  for (FrameType x : types_) {
    if (x == t) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(types_.size());
}

GopPattern GopPattern::paper_default() { return GopPattern("IBBPBBPBBPBBP"); }

}  // namespace rtsmooth::trace
