#include "trace/stock_clips.h"

#include <stdexcept>

namespace rtsmooth::trace {

FrameSequence stock_clip(std::string_view name, std::size_t frames) {
  if (name == "cnn-news") {
    MpegTraceModel model(MpegModelConfig{}, /*seed=*/2000);
    return model.generate(frames);
  }
  if (name == "action") {
    MpegModelConfig cfg;
    cfg.size_sigma = 0.35;
    cfg.scene_sigma = 0.55;
    cfg.scene_rho = 0.985;
    MpegTraceModel model(cfg, /*seed=*/404);
    return model.generate(frames);
  }
  if (name == "talking-head") {
    MpegModelConfig cfg;
    cfg.size_sigma = 0.10;
    cfg.scene_sigma = 0.08;
    cfg.scene_rho = 0.999;
    MpegTraceModel model(cfg, /*seed=*/11);
    return model.generate(frames);
  }
  if (name == "smooth-cbr") {
    FrameSequence seq(frames,
                      Frame{.type = FrameType::Other, .size = 38 * 1024});
    return seq;
  }
  throw std::invalid_argument("unknown stock clip: " + std::string(name));
}

std::vector<std::string> stock_clip_names() {
  return {"cnn-news", "action", "talking-head", "smooth-cbr"};
}

}  // namespace rtsmooth::trace
