// Local value functions (paper Definition 2.6 and Sect. 5).
//
// A ValueModel assigns a *byte value* to each frame type; a slice's weight
// is its byte value times its size. Keeping value per byte (rather than per
// slice) makes weighted loss directly comparable across slicing
// granularities — a frame carries the same total weight whether it is cut
// into bytes or kept whole — which is what Figs. 5 and 6 rely on.

#pragma once

#include <array>

#include "core/types.h"

namespace rtsmooth::trace {

class ValueModel {
 public:
  /// The paper's experimental weighting: I : P : B = 12 : 8 : 1 (Sect. 5),
  /// Other treated as 1.
  static ValueModel mpeg_default() { return ValueModel({12.0, 8.0, 1.0, 1.0}); }

  /// Every byte worth 1 — benefit degenerates to throughput (the remark
  /// after Definition 2.6).
  static ValueModel throughput() { return ValueModel({1.0, 1.0, 1.0, 1.0}); }

  /// Custom byte values indexed by FrameType (I, P, B, Other).
  static ValueModel custom(std::array<double, 4> values) {
    return ValueModel(values);
  }

  double byte_value(FrameType t) const {
    return values_[static_cast<std::size_t>(t)];
  }

  /// Weight of a whole slice of `size` bytes of type `t`.
  Weight slice_weight(FrameType t, Bytes size) const {
    return byte_value(t) * static_cast<Weight>(size);
  }

 private:
  explicit ValueModel(std::array<double, 4> values) : values_(values) {}
  std::array<double, 4> values_;
};

}  // namespace rtsmooth::trace
