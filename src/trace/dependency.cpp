#include "trace/dependency.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::trace {
namespace {

bool is_reference(FrameType t) {
  return t == FrameType::I || t == FrameType::P;
}

/// Index of the nearest reference frame strictly before i, or -1.
std::ptrdiff_t prev_reference(std::span<const Frame> frames,
                              std::ptrdiff_t i) {
  for (std::ptrdiff_t j = i - 1; j >= 0; --j) {
    if (is_reference(frames[static_cast<std::size_t>(j)].type)) return j;
  }
  return -1;
}

/// Index of the nearest reference frame strictly after i, or -1.
std::ptrdiff_t next_reference(std::span<const Frame> frames,
                              std::ptrdiff_t i) {
  const auto n = static_cast<std::ptrdiff_t>(frames.size());
  for (std::ptrdiff_t j = i + 1; j < n; ++j) {
    if (is_reference(frames[static_cast<std::size_t>(j)].type)) return j;
  }
  return -1;
}

}  // namespace

std::vector<Bytes> delivered_bytes_per_frame(const Stream& stream,
                                             const ScheduleRecorder& rec,
                                             std::size_t frame_count) {
  RTS_EXPECTS(rec.run_count() == stream.run_count());
  std::vector<Bytes> delivered(frame_count, 0);
  const auto runs = stream.runs();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::int64_t frame = runs[i].frame_index;
    RTS_EXPECTS(frame >= 0 &&
                static_cast<std::size_t>(frame) < frame_count);
    delivered[static_cast<std::size_t>(frame)] +=
        rec.run(i).played * runs[i].slice_size;
  }
  return delivered;
}

DependencyReport analyze_decodability(std::span<const Frame> frames,
                                      std::span<const Bytes> delivered,
                                      double delivery_threshold) {
  RTS_EXPECTS(frames.size() == delivered.size());
  RTS_EXPECTS(delivery_threshold > 0.0 && delivery_threshold <= 1.0);
  DependencyReport report;
  report.total_frames = static_cast<std::int64_t>(frames.size());
  const auto n = static_cast<std::ptrdiff_t>(frames.size());

  std::vector<bool> ok(frames.size(), false);       // delivered intact
  std::vector<bool> decodable(frames.size(), false);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    report.total_bytes += frames[k].size;
    ok[k] = static_cast<double>(delivered[k]) >=
            delivery_threshold * static_cast<double>(frames[k].size);
    if (ok[k]) ++report.delivered_frames;
  }
  // References first, in order (each depends only on earlier references)...
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (!is_reference(frames[k].type)) continue;
    if (!ok[k]) continue;
    if (frames[k].type == FrameType::I) {
      decodable[k] = true;
    } else {
      const std::ptrdiff_t ref = prev_reference(frames, i);
      decodable[k] = ref >= 0 && decodable[static_cast<std::size_t>(ref)];
    }
  }
  // ...then B (and Other, treated as B-like) frames against both walls.
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (is_reference(frames[k].type)) continue;
    if (!ok[k]) continue;
    const std::ptrdiff_t prev = prev_reference(frames, i);
    const std::ptrdiff_t next = next_reference(frames, i);
    const bool prev_ok =
        prev >= 0 && decodable[static_cast<std::size_t>(prev)];
    const bool next_ok =
        next < 0 || decodable[static_cast<std::size_t>(next)];
    decodable[k] = prev_ok && next_ok;
  }
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (!ok[k]) continue;
    if (decodable[k]) {
      ++report.decodable_frames;
      report.decodable_bytes += frames[k].size;
    } else {
      ++report.garbage_frames;
    }
  }
  return report;
}

std::vector<double> dependency_aware_values(std::span<const Frame> frames) {
  const auto n = static_cast<std::ptrdiff_t>(frames.size());
  // chain[i] (references only): i plus all its transitive reference
  // ancestors — the frames whose loss makes i undecodable.
  std::vector<std::vector<std::size_t>> chain(frames.size());
  std::vector<double> accum(frames.size(), 0.0);
  auto add_to = [&](std::span<const std::size_t> kill_set, Bytes size) {
    for (std::size_t f : kill_set) accum[f] += static_cast<double>(size);
  };
  // Pass 1: reference chains, in order (each depends only on earlier refs).
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (!is_reference(frames[k].type)) continue;
    if (frames[k].type == FrameType::P) {
      const std::ptrdiff_t ref = prev_reference(frames, i);
      if (ref >= 0) chain[k] = chain[static_cast<std::size_t>(ref)];
    }
    chain[k].push_back(k);
    add_to(chain[k], frames[k].size);
  }
  // Pass 2: B-like frames — killed by themselves or by either surrounding
  // reference chain (which may lie *after* them, hence the separate pass).
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (is_reference(frames[k].type)) continue;
    std::vector<std::size_t> kill{k};
    const std::ptrdiff_t prev = prev_reference(frames, i);
    const std::ptrdiff_t next = next_reference(frames, i);
    if (prev >= 0) {
      const auto& c = chain[static_cast<std::size_t>(prev)];
      kill.insert(kill.end(), c.begin(), c.end());
    }
    if (next >= 0) {
      const auto& c = chain[static_cast<std::size_t>(next)];
      kill.insert(kill.end(), c.begin(), c.end());
    }
    std::sort(kill.begin(), kill.end());
    kill.erase(std::unique(kill.begin(), kill.end()), kill.end());
    add_to(kill, frames[k].size);
  }
  std::vector<double> values(frames.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    values[k] = accum[k] / static_cast<double>(frames[k].size);
  }
  return values;
}

}  // namespace rtsmooth::trace
