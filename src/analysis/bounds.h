// Closed-form bounds from the paper's theory, used by tests (to check
// measured ratios against guarantees) and by the tab_competitive bench (to
// print guarantee columns next to measurements).

#pragma once

#include "core/types.h"

namespace rtsmooth::analysis {

/// Theorem 4.1: Greedy's competitive ratio is at most
/// 4B / (B - 2(Lmax - 1)). Requires B > 2(Lmax - 1).
double greedy_competitive_upper_bound(Bytes buffer, Bytes max_slice_size);

/// Theorem 4.7: on the explicit 3-phase stream, opt/greedy is at least
/// 2 - (2/(alpha+1) + 1/(B+1)). This returns that bound.
double greedy_lower_bound_thm47(Bytes buffer, double alpha);

/// The exact ratio of the Theorem 4.7 construction:
/// (1 + alpha(2B+1)) / ((B+1)(1+alpha)). Tests pin the simulated greedy
/// against this exactly.
double greedy_thm47_exact_ratio(Bytes buffer, double alpha);

/// Theorem 4.8's two-scenario adversary in the large-B limit, z = B/t1:
/// scenario 1 (stream stops at t1) forces ratio >= (z+alpha)/(1+alpha);
/// scenario 2 (burst at t1+1) forces >= alpha(1+z)/(1+alpha z).
double thm48_scenario1_ratio(double z, double alpha);
double thm48_scenario2_ratio(double z, double alpha);

struct DeterministicLowerBound {
  double alpha = 0.0;
  double z = 0.0;      ///< optimal B/t1
  double ratio = 0.0;  ///< the proven lower bound
};

/// The crossing point of the two scenario curves for a given alpha: solves
/// alpha z^2 + (1-alpha) z - alpha^2 = 0 for z > 0. alpha = 2 gives the
/// paper's 1.2287 (z ~ 1.6861).
DeterministicLowerBound deterministic_lower_bound(double alpha);

/// Maximizes the bound over alpha (the Lotker / Sviridenko remark):
/// alpha ~ 4.015, ratio ~ 1.28197.
DeterministicLowerBound best_deterministic_lower_bound();

/// Theorem 4.8's finite-B scenario ratios for a concrete (B, t1, alpha),
/// matching the benefit formulas in the proof.
double thm48_finite_scenario1(Bytes buffer, Time t1, double alpha);
double thm48_finite_scenario2(Bytes buffer, Time t1, double alpha);

}  // namespace rtsmooth::analysis
