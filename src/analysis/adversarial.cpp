#include "analysis/adversarial.h"

#include "util/assert.h"

namespace rtsmooth::analysis {
namespace {

SliceRun unit_run(Time t, std::int64_t count, Weight weight) {
  return SliceRun{.arrival = t,
                  .slice_size = 1,
                  .count = count,
                  .weight = weight,
                  .frame_type = FrameType::Other,
                  .frame_index = t};
}

}  // namespace

Stream thm47_stream(Bytes buffer, double alpha) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(alpha >= 1.0);
  std::vector<SliceRun> runs;
  runs.push_back(unit_run(0, buffer + 1, 1.0));
  for (Time t = 1; t <= buffer; ++t) runs.push_back(unit_run(t, 1, alpha));
  runs.push_back(unit_run(buffer + 1, buffer + 1, alpha));
  return Stream::from_runs(std::move(runs));
}

Stream thm48_scenario1_stream(Bytes buffer, Time t1, double alpha) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(t1 >= 1);
  RTS_EXPECTS(alpha >= 1.0);
  std::vector<SliceRun> runs;
  runs.push_back(unit_run(0, buffer + 1, 1.0));
  for (Time t = 1; t <= t1; ++t) runs.push_back(unit_run(t, 1, alpha));
  return Stream::from_runs(std::move(runs));
}

Stream thm48_scenario2_stream(Bytes buffer, Time t1, double alpha) {
  std::vector<SliceRun> runs;
  runs.push_back(unit_run(0, buffer + 1, 1.0));
  for (Time t = 1; t <= t1; ++t) runs.push_back(unit_run(t, 1, alpha));
  runs.push_back(unit_run(t1 + 1, buffer + 1, alpha));
  return Stream::from_runs(std::move(runs));
}

Stream lemma36_stream(Bytes batch_size, std::int64_t batches) {
  RTS_EXPECTS(batch_size >= 1);
  RTS_EXPECTS(batches >= 1);
  std::vector<SliceRun> runs;
  runs.reserve(static_cast<std::size_t>(batches));
  for (std::int64_t k = 0; k < batches; ++k) {
    runs.push_back(unit_run(k * batch_size, batch_size, 1.0));
  }
  return Stream::from_runs(std::move(runs));
}

}  // namespace rtsmooth::analysis
