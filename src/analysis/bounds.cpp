#include "analysis/bounds.h"

#include <cmath>

#include "util/assert.h"

namespace rtsmooth::analysis {

double greedy_competitive_upper_bound(Bytes buffer, Bytes max_slice_size) {
  RTS_EXPECTS(max_slice_size >= 1);
  RTS_EXPECTS(buffer > 2 * (max_slice_size - 1));
  return 4.0 * static_cast<double>(buffer) /
         static_cast<double>(buffer - 2 * (max_slice_size - 1));
}

double greedy_lower_bound_thm47(Bytes buffer, double alpha) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(alpha >= 1.0);
  return 2.0 - (2.0 / (alpha + 1.0) +
                1.0 / (static_cast<double>(buffer) + 1.0));
}

double greedy_thm47_exact_ratio(Bytes buffer, double alpha) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(alpha >= 1.0);
  const auto b = static_cast<double>(buffer);
  return (1.0 + alpha * (2.0 * b + 1.0)) / ((b + 1.0) * (1.0 + alpha));
}

double thm48_scenario1_ratio(double z, double alpha) {
  return (z + alpha) / (1.0 + alpha);
}

double thm48_scenario2_ratio(double z, double alpha) {
  return alpha * (1.0 + z) / (1.0 + alpha * z);
}

DeterministicLowerBound deterministic_lower_bound(double alpha) {
  RTS_EXPECTS(alpha > 1.0);
  // Crossing point: alpha z^2 + (1 - alpha) z - alpha^2 = 0.
  const double a = alpha;
  const double disc = (1.0 - a) * (1.0 - a) + 4.0 * a * a * a;
  const double z = ((a - 1.0) + std::sqrt(disc)) / (2.0 * a);
  RTS_ENSURES(z > 0.0);
  return DeterministicLowerBound{
      .alpha = alpha, .z = z, .ratio = thm48_scenario1_ratio(z, alpha)};
}

DeterministicLowerBound best_deterministic_lower_bound() {
  // The bound is unimodal in alpha; golden-section search on [1.01, 20].
  double lo = 1.01;
  double hi = 20.0;
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  auto value = [](double a) { return deterministic_lower_bound(a).ratio; };
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = value(x1);
  double f2 = value(x2);
  for (int i = 0; i < 200; ++i) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = value(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = value(x1);
    }
  }
  return deterministic_lower_bound((lo + hi) / 2.0);
}

double thm48_finite_scenario1(Bytes buffer, Time t1, double alpha) {
  RTS_EXPECTS(t1 >= 1);
  const auto b = static_cast<double>(buffer);
  const auto t = static_cast<double>(t1);
  // A's benefit at most (t1+1) + alpha*t1; opt keeps everything:
  // (B+1) + alpha*t1.
  return (b + 1.0 + alpha * t) / (t + 1.0 + alpha * t);
}

double thm48_finite_scenario2(Bytes buffer, Time t1, double alpha) {
  RTS_EXPECTS(t1 >= 1);
  const auto b = static_cast<double>(buffer);
  const auto t = static_cast<double>(t1);
  // A: (t1+1) + alpha*(B+1); opt: 1 + alpha*(t1+B+1).
  return (1.0 + alpha * (t + b + 1.0)) / (t + 1.0 + alpha * (b + 1.0));
}

}  // namespace rtsmooth::analysis
