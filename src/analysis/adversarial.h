// Adversarial input streams from the paper's lower-bound proofs. All use
// unit slices and link rate R = 1, as in the proofs.

#pragma once

#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth::analysis {

/// Theorem 4.7's stream against Greedy with buffer B:
///   t = 0:        B+1 slices of weight 1
///   t = 1..B:     one slice of weight alpha per step
///   t = B+1:      B+1 slices of weight alpha
/// Greedy earns (B+1)(1+alpha); the optimum earns 1 + alpha(2B+1).
Stream thm47_stream(Bytes buffer, double alpha);

/// Theorem 4.8's scenario-1 stream for an adversary probing a deterministic
/// algorithm that last sends a weight-1 slice at step t1:
///   t = 0:        B+1 slices of weight 1
///   t = 1..t1:    one slice of weight alpha per step
Stream thm48_scenario1_stream(Bytes buffer, Time t1, double alpha);

/// Scenario 2: scenario 1 plus a burst of B+1 weight-alpha slices at t1+1.
Stream thm48_scenario2_stream(Bytes buffer, Time t1, double alpha);

/// Lemma 3.6's tightness stream: `batches` batches of `batch_size` unit
/// slices, one batch every `batch_size` steps (so a buffer of exactly
/// batch_size loses nothing and smaller buffers lose the difference).
Stream lemma36_stream(Bytes batch_size, std::int64_t batches);

}  // namespace rtsmooth::analysis
