// Empirical competitive-ratio measurement: run an on-line policy through the
// full system and divide the off-line optimal benefit by the on-line
// benefit, exactly as Sect. 4 defines opt(B)/online(B).

#pragma once

#include <string_view>

#include "core/slice.h"
#include "core/types.h"
#include "util/rng.h"

namespace rtsmooth::analysis {

struct RatioResult {
  double ratio = 1.0;          ///< opt / online (>= 1 up to solver exactness)
  Weight online_benefit = 0.0;
  Weight offline_benefit = 0.0;
};

/// Measures opt(B)/online(B) for the named policy with server buffer
/// `buffer` and link rate `rate` (the balanced plan D = B/R is used, so the
/// client is transparent and only server drops matter).
RatioResult measured_ratio(const Stream& stream, Bytes buffer, Bytes rate,
                           std::string_view policy);

/// Random unit-slice stream for property sweeps: `horizon` steps, up to
/// `max_batch` slices per step, weights uniform in [1, max_weight]. A step
/// has arrivals with probability `arrival_probability` (burstiness knob).
Stream random_unit_stream(Rng& rng, Time horizon, std::int64_t max_batch,
                          double max_weight,
                          double arrival_probability = 0.7);

/// Random variable-size stream (slice sizes in [1, max_slice_size]).
Stream random_variable_stream(Rng& rng, Time horizon, std::int64_t max_batch,
                              double max_weight, Bytes max_slice_size,
                              double arrival_probability = 0.7);

}  // namespace rtsmooth::analysis
