#include "analysis/competitive.h"

#include "core/planner.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace rtsmooth::analysis {

RatioResult measured_ratio(const Stream& stream, Bytes buffer, Bytes rate,
                           std::string_view policy) {
  const Plan plan = Planner::from_buffer_rate(buffer, rate);
  const SimReport report = sim::simulate(stream, plan, policy);
  RatioResult result;
  result.online_benefit = report.played.weight;
  if (stream.unit_slices()) {
    result.offline_benefit =
        offline::unit_optimal(stream, plan.buffer, plan.rate).benefit;
  } else {
    result.offline_benefit =
        offline::pareto_dp_optimal(stream, plan.buffer, plan.rate).benefit;
  }
  result.ratio = result.online_benefit > 0.0
                     ? result.offline_benefit / result.online_benefit
                     : (result.offline_benefit > 0.0 ? 1e308 : 1.0);
  return result;
}

Stream random_unit_stream(Rng& rng, Time horizon, std::int64_t max_batch,
                          double max_weight, double arrival_probability) {
  return random_variable_stream(rng, horizon, max_batch, max_weight, 1,
                                arrival_probability);
}

Stream random_variable_stream(Rng& rng, Time horizon, std::int64_t max_batch,
                              double max_weight, Bytes max_slice_size,
                              double arrival_probability) {
  RTS_EXPECTS(horizon >= 1);
  RTS_EXPECTS(max_batch >= 1);
  RTS_EXPECTS(max_weight >= 1.0);
  RTS_EXPECTS(max_slice_size >= 1);
  std::vector<SliceRun> runs;
  for (Time t = 0; t < horizon; ++t) {
    if (!rng.bernoulli(arrival_probability)) continue;
    const std::int64_t batch = rng.uniform_int(1, max_batch);
    for (std::int64_t k = 0; k < batch; ++k) {
      const Bytes size = rng.uniform_int(1, max_slice_size);
      runs.push_back(SliceRun{
          .arrival = t,
          .slice_size = size,
          .count = 1,
          .weight = rng.uniform(1.0, max_weight) * static_cast<double>(size),
          .frame_type = FrameType::Other,
          .frame_index = t});
    }
  }
  if (runs.empty()) {
    runs.push_back(SliceRun{.arrival = 0,
                            .slice_size = 1,
                            .count = 1,
                            .weight = 1.0,
                            .frame_type = FrameType::Other,
                            .frame_index = 0});
  }
  return Stream::from_runs(std::move(runs));
}

}  // namespace rtsmooth::analysis
